"""Tests for the harness: tables, cache, experiments, CLI."""

import json

import pytest

from repro.harness.cache import ResultCache, config_signature
from repro.harness.experiments import cached_simulate, run_matrix
from repro.harness.tables import format_bar_chart, format_table, pct
from repro.uarch.config import cortex_a5, rocket


class TestFormatTable:
    def test_basic(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "--" in lines[1]
        assert lines[2].startswith("a")

    def test_alignment(self):
        text = format_table(["n", "v"], [["x", 5]], aligns=["l", "r"])
        row = text.splitlines()[-1]
        assert row.endswith("5")

    def test_title(self):
        text = format_table(["a"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestBarChart:
    def test_bars_scale(self):
        text = format_bar_chart(
            ["w1"], {"scd": [2.0], "vbbi": [1.0]}, width=20
        )
        lines = text.splitlines()
        scd_bar = next(l for l in lines if "scd" in l)
        vbbi_bar = next(l for l in lines if "vbbi" in l)
        assert scd_bar.count("#") == 2 * vbbi_bar.count("#")

    def test_handles_zero(self):
        text = format_bar_chart(["w"], {"s": [0.0]})
        assert "0.000" in text


def test_pct():
    assert pct(0.102) == "+10.2%"
    assert pct(-0.016) == "-1.6%"
    assert pct(0.0484, 2) == "+4.84%"


class TestConfigSignature:
    def test_differs_across_presets(self):
        assert config_signature(cortex_a5()) != config_signature(rocket())

    def test_sensitive_to_btb_size(self):
        assert config_signature(cortex_a5()) != config_signature(
            cortex_a5().with_changes(btb_entries=64)
        )

    def test_sensitive_to_jte_cap(self):
        assert config_signature(cortex_a5()) != config_signature(
            cortex_a5().with_changes(jte_cap=4)
        )

    def test_stable(self):
        assert config_signature(cortex_a5()) == config_signature(cortex_a5())


class TestResultCache:
    def test_roundtrip(self, tmp_cache):
        result = cached_simulate(
            "fibo", "lua", "scd", scale="sim", cache=tmp_cache,
            n=8, check_output=False,
        )
        again = cached_simulate(
            "fibo", "lua", "scd", scale="sim", cache=tmp_cache,
            n=8, check_output=False,
        )
        assert again == result
        assert tmp_cache.path.exists()

    def test_get_missing(self, tmp_cache):
        assert tmp_cache.get("nope") is None

    def test_clear(self, tmp_cache):
        result = cached_simulate(
            "fibo", "lua", "scd", cache=tmp_cache, n=8, check_output=False
        )
        tmp_cache.clear()
        assert not tmp_cache.path.exists()
        assert tmp_cache.get("anything") is None

    def test_corrupt_file_recovers(self, tmp_cache):
        tmp_cache.path.parent.mkdir(parents=True, exist_ok=True)
        tmp_cache.path.write_text("{not json")
        assert tmp_cache.get("x") is None

    def test_none_cache_bypasses(self):
        result = cached_simulate(
            "fibo", "lua", "baseline", cache=None, n=8, check_output=False
        )
        assert result.output == ("21",)


class TestRunMatrix:
    def test_shape(self, tmp_cache):
        matrix = run_matrix(
            "lua", ("baseline", "scd"), workloads=("fibo",), cache=tmp_cache
        )
        assert set(matrix) == {("fibo", "baseline"), ("fibo", "scd")}
        assert matrix[("fibo", "scd")].cycles < matrix[("fibo", "baseline")].cycles


class TestCli:
    def test_list(self, capsys):
        from repro.harness.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out
        assert "mandelbrot" in out

    def test_run(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "fibo", "--vm", "lua", "--scheme", "scd"]) == 0
        out = capsys.readouterr().out
        assert "bop hit rate" in out
        assert "cycles" in out

    def test_run_show_output(self, capsys):
        from repro.harness.cli import main

        assert main(["run", "fibo", "--show-output"]) == 0
        assert "233" in capsys.readouterr().out

    def test_unknown_command(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
