"""Unit tests for the block-driven pipeline timing model."""

import pytest

from repro.isa import assemble
from repro.uarch.config import CacheConfig, cortex_a5, cortex_a8, rocket
from repro.uarch.pipeline import Machine


def make_block(n_insts=4, loads=0, stores=0, base=0x1_0000):
    body = []
    for i in range(loads):
        body.append(f"ldq r{i+1}, 0(r14)")
    for i in range(stores):
        body.append(f"stq r{i+1}, 0(r15)")
    while len(body) < n_insts:
        body.append("add r1, r2, r3")
    program = assemble("Block:\n" + "\n".join(body) + "\n", base=base)
    return program.block("Block")


class TestExecBlock:
    def test_single_issue_one_cycle_per_inst(self):
        machine = Machine(cortex_a5())
        block = make_block(8)
        machine.exec_block(block)
        stats = machine.finalize()
        assert stats.instructions == 8
        # 8 issue cycles + whatever the cold I-miss cost.
        assert stats.cycles >= 8

    def test_dual_issue_halves_base_cycles(self):
        single = Machine(cortex_a5())
        dual = Machine(cortex_a5().with_changes(issue_width=2, l2=None))
        block = make_block(8)
        for _ in range(100):
            single.exec_block(block)
            dual.exec_block(block)
        s1 = single.finalize()
        s2 = dual.finalize()
        assert s2.cycle_breakdown["base"] * 2 == s1.cycle_breakdown["base"]

    def test_icache_warm_after_first(self):
        machine = Machine(cortex_a5())
        block = make_block(4)
        machine.exec_block(block)
        misses_after_first = machine.icache.misses
        for _ in range(10):
            machine.exec_block(block)
        assert machine.icache.misses == misses_after_first

    def test_multi_line_block_fetches_all_lines(self):
        machine = Machine(cortex_a5())
        block = make_block(40)  # 160 bytes -> 3-4 lines
        machine.exec_block(block)
        assert machine.icache.misses >= 3

    def test_dcache_accounting(self):
        machine = Machine(cortex_a5())
        block = make_block(4, loads=2)
        machine.exec_block(block, daddrs=(0x8000, 0x8008))
        stats = machine.finalize()
        assert stats.dcache_accesses == 2
        assert stats.dcache_misses == 1  # same line
        machine.exec_block(block, daddrs=(0x8000,))
        assert machine.stats.dcache_misses == 1  # warm now

    def test_dcache_miss_adds_stall(self):
        machine = Machine(cortex_a5())
        block = make_block(4, loads=1)
        machine.exec_block(block, daddrs=(0x9000,))
        stats = machine.finalize()
        assert stats.cycle_breakdown.get("dcache_stall", 0) > 0

    def test_category_accounting(self):
        machine = Machine(cortex_a5())
        program = assemble(".category dispatch\nD:\nadd r1, r2, r3\nnop\n")
        machine.exec_block(program.block("D"))
        stats = machine.finalize()
        assert stats.insts_by_category["dispatch"] == 2

    def test_finalize_idempotent(self):
        machine = Machine(cortex_a5())
        block = make_block(4)
        machine.exec_block(block)
        first = machine.finalize().instructions
        second = machine.finalize().instructions
        assert first == second == 4

    def test_rejects_non_64_byte_lines(self):
        config = cortex_a5().with_changes(icache=CacheConfig(16 * 1024, 2, 32))
        with pytest.raises(ValueError, match="64-byte"):
            Machine(config)


class TestCondBranch:
    def test_mispredict_costs_penalty(self):
        machine = Machine(cortex_a5())
        cycles_before = machine.stats.cycles
        # Fresh predictor weakly-taken: feed an unexpected direction until a
        # mispredict happens.
        mispredicted = False
        for taken in (False, False, True, True, False):
            if machine.cond_branch(0x100, taken, "guest_branch"):
                mispredicted = True
        assert mispredicted
        assert machine.stats.branch_mispredicts >= 1
        assert machine.stats.mispredicts_by_category["guest_branch"] >= 1
        assert machine.stats.cycles > cycles_before

    def test_well_predicted_branch_free_after_warmup(self):
        machine = Machine(cortex_a5())
        for _ in range(8):
            machine.cond_branch(0x100, True)
        cycles = machine.stats.cycles
        mispredicts = machine.stats.branch_mispredicts
        machine.btb.insert(0x100, 0x200)
        for _ in range(20):
            assert not machine.cond_branch(0x100, True)
        assert machine.stats.branch_mispredicts == mispredicts

    def test_taken_branch_btb_miss_costs_redirect(self):
        machine = Machine(cortex_a5())
        for _ in range(8):
            machine.cond_branch(0x300, True)  # train taken
        misses_before = machine.stats.btb_target_misses
        machine.btb.flush_all()
        machine.cond_branch(0x300, True)
        assert machine.stats.btb_target_misses == misses_before + 1


class TestIndirectJump:
    def test_btb_last_target(self):
        machine = Machine(cortex_a5())
        assert machine.indirect_jump(0x100, 0x500)  # cold miss
        assert not machine.indirect_jump(0x100, 0x500)  # repeat hits
        assert machine.indirect_jump(0x100, 0x600)  # target change misses

    def test_vbbi_separates_by_hint(self):
        machine = Machine(cortex_a5().with_changes(indirect_scheme="vbbi"))
        machine.indirect_jump(0x100, 0x500, hint=1)
        machine.indirect_jump(0x100, 0x600, hint=2)
        # Alternating targets with distinct hints: both predicted.
        assert not machine.indirect_jump(0x100, 0x500, hint=1)
        assert not machine.indirect_jump(0x100, 0x600, hint=2)

    def test_btb_thrashes_on_alternation_without_hint(self):
        machine = Machine(cortex_a5())
        machine.indirect_jump(0x100, 0x500)
        assert machine.indirect_jump(0x100, 0x600)
        assert machine.indirect_jump(0x100, 0x500)

    def test_ttc_scheme(self):
        machine = Machine(cortex_a5().with_changes(indirect_scheme="ttc"))
        targets = [0x500, 0x600] * 40
        missed = sum(machine.indirect_jump(0x100, t) for t in targets)
        assert missed < len(targets) * 0.5  # history captures alternation

    def test_category_attribution(self):
        machine = Machine(cortex_a5())
        machine.indirect_jump(0x100, 0x500, category="dispatch_jump")
        assert machine.stats.mispredicts_by_category["dispatch_jump"] == 1


class TestCallReturn:
    def test_matched_call_ret_predicted(self):
        machine = Machine(cortex_a5())
        machine.call(0x100, 0x500, 0x104)
        assert not machine.ret(0x510, 0x104)

    def test_ret_without_call_mispredicts(self):
        machine = Machine(cortex_a5())
        assert machine.ret(0x510, 0x104)
        assert machine.stats.ras_mispredicts == 1

    def test_deep_recursion_overflows_shallow_ras(self):
        machine = Machine(rocket())  # 2-entry RAS
        for i in range(6):
            machine.call(0x100, 0x500, 0x1000 + i * 8)
        mispredicts = 0
        for i in reversed(range(6)):
            if machine.ret(0x510, 0x1000 + i * 8):
                mispredicts += 1
        assert mispredicts == 4  # only the 2 newest survive


class TestScdOps:
    def test_bop_miss_then_jru_then_hit(self):
        machine = Machine(cortex_a5())
        machine.load_op(13)
        assert machine.bop(0x100) is None
        machine.jru(0x120, 0x7000)
        assert machine.stats.jte_inserts == 1
        machine.load_op(13)
        assert machine.bop(0x100) == 0x7000
        assert machine.stats.bop_hits == 1
        assert machine.stats.bop_misses == 1

    def test_bop_stall_cycles_accounted(self):
        machine = Machine(cortex_a5())
        machine.load_op(5)
        machine.bop(0x100)
        assert machine.stats.scd_stall_cycles == machine.config.scd_stall_cycles
        assert machine.stats.cycle_breakdown["scd_stall"] > 0

    def test_fallthrough_policy_never_hits(self):
        machine = Machine(cortex_a5().with_changes(scd_stall_policy="fallthrough"))
        machine.load_op(5)
        assert machine.bop(0x100) is None
        machine.jru(0x120, 0x7000)
        machine.load_op(5)
        assert machine.bop(0x100) is None
        assert machine.stats.bop_hits == 0
        assert machine.stats.scd_stall_cycles == 0

    def test_jte_flush(self):
        machine = Machine(cortex_a5())
        machine.load_op(5)
        machine.bop(0x100)
        machine.jru(0x120, 0x7000)
        assert machine.jte_flush() == 1
        machine.load_op(5)
        assert machine.bop(0x100) is None

    def test_jte_cap_respected(self):
        machine = Machine(cortex_a5().with_changes(jte_cap=2))
        for opcode in range(10):
            machine.load_op(opcode)
            machine.bop(0x100)
            machine.jru(0x120, 0x7000 + opcode)
        assert machine.btb.jte_count <= 2

    def test_context_switch_flushes(self):
        machine = Machine(cortex_a5())
        machine.load_op(5)
        machine.bop(0x100)
        machine.jru(0x120, 0x7000)
        machine.call(0x100, 0x500, 0x104)
        machine.context_switch()
        assert machine.btb.jte_count == 0
        assert machine.ret(0x510, 0x104)  # RAS was drained


class TestConfigs:
    @pytest.mark.parametrize("factory", [cortex_a5, rocket, cortex_a8])
    def test_presets_construct(self, factory):
        machine = Machine(factory())
        block = make_block(4)
        machine.exec_block(block)
        assert machine.finalize().instructions == 4

    def test_a8_has_l2(self):
        machine = Machine(cortex_a8())
        assert machine.l2 is not None

    def test_l2_absorbs_dram_latency(self):
        with_l2 = Machine(cortex_a8())
        without_l2 = Machine(cortex_a8().with_changes(l2=None))
        block = make_block(4, loads=1)
        # Touch once to install in L2, flush L1, re-touch.
        for machine in (with_l2, without_l2):
            machine.exec_block(block, daddrs=(0x4_0000,))
            machine.dcache.flush()
            machine.exec_block(block, daddrs=(0x4_0000,))
        assert (
            with_l2.stats.cycle_breakdown["dcache_stall"]
            < without_l2.stats.cycle_breakdown["dcache_stall"]
        )

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            cortex_a5().with_changes(issue_width=0).validate()
        with pytest.raises(ValueError):
            cortex_a5().with_changes(indirect_scheme="magic").validate()
        with pytest.raises(ValueError):
            cortex_a5().with_changes(scd_stall_policy="spin").validate()
        with pytest.raises(ValueError):
            cortex_a5().with_changes(btb_entries=100, btb_ways=3).validate()
        with pytest.raises(ValueError):
            cortex_a5().with_changes(jte_cap=-1).validate()
