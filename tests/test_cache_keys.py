"""Result-cache key canonicalization properties (repro.harness.cache).

The sharded cache is only sound if (1) logically-equal configurations
canonicalize to the same key, (2) *any* timing-relevant field change
changes the key, and (3) key -> shard-file assignment is stable across
processes (workers of one pool must agree on entry paths).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.cache import (
    ResultCache,
    config_signature,
    sim_cache_key,
)
from repro.harness.parallel import SimJob
from repro.uarch.config import CONFIG_PRESETS, cortex_a5

#: One override per timing-relevant scalar field of CoreConfig.
_FIELD_OVERRIDES = {
    "issue_width": 2,
    "branch_penalty": 17,
    "decode_redirect_penalty": 9,
    "direction_predictor": "taken",
    "btb_entries": 128,
    "btb_ways": 4,
    "ras_depth": 5,
    "itlb_entries": 64,
    "dtlb_entries": 64,
    "tlb_miss_penalty": 99,
    "indirect_scheme": "vbbi",
    "scd_stall_cycles": 7,
    "scd_tables": 2,
    "jte_cap": 16,
    "clock_mhz": 1234,
}


class TestConfigSignature:
    def test_equal_configs_equal_signatures(self):
        assert config_signature(cortex_a5()) == config_signature(cortex_a5())

    @pytest.mark.parametrize("field", sorted(_FIELD_OVERRIDES))
    def test_any_field_change_changes_signature(self, field):
        base = cortex_a5()
        changed = base.with_changes(**{field: _FIELD_OVERRIDES[field]})
        assert getattr(changed, field) != getattr(base, field), field
        assert config_signature(changed) != config_signature(base), field

    def test_presets_have_distinct_signatures(self):
        signatures = {
            name: config_signature(factory())
            for name, factory in CONFIG_PRESETS.items()
        }
        assert len(set(signatures.values())) == len(signatures)


class TestSimCacheKey:
    def test_equal_inputs_equal_keys(self):
        a = sim_cache_key("lua", "scd", "fibo", "sim", cortex_a5(), {"n": 5})
        b = sim_cache_key("lua", "scd", "fibo", "sim", cortex_a5(), {"n": 5})
        assert a == b

    def test_kwargs_order_is_canonicalized(self):
        forward = dict([("alpha", 1), ("beta", 2)])
        backward = dict([("beta", 2), ("alpha", 1)])
        assert sim_cache_key(
            "lua", "scd", "fibo", "sim", None, forward
        ) == sim_cache_key("lua", "scd", "fibo", "sim", None, backward)

    @pytest.mark.parametrize(
        "change",
        [
            dict(vm="js"),
            dict(scheme="baseline"),
            dict(workload="nbody"),
            dict(scale="fpga"),
            dict(kwargs={"n": 6}),
            dict(kwargs={"n": 5, "extra": True}),
            dict(kwargs={}),
        ],
    )
    def test_any_coordinate_change_changes_key(self, change):
        base_args = dict(
            vm="lua", scheme="scd", workload="fibo", scale="sim",
            kwargs={"n": 5},
        )
        base = sim_cache_key(
            base_args["vm"], base_args["scheme"], base_args["workload"],
            base_args["scale"], None, base_args["kwargs"],
        )
        varied_args = {**base_args, **change}
        varied = sim_cache_key(
            varied_args["vm"], varied_args["scheme"], varied_args["workload"],
            varied_args["scale"], None, varied_args["kwargs"],
        )
        assert varied != base

    def test_config_reaches_the_key(self):
        base = sim_cache_key("lua", "scd", "fibo", "sim", cortex_a5(), {})
        varied = sim_cache_key(
            "lua", "scd", "fibo", "sim",
            cortex_a5().with_changes(jte_cap=8), {},
        )
        assert varied != base

    def test_non_json_kwargs_fall_back_to_repr(self):
        """default=repr keeps exotic kwarg values from crashing the key."""
        a = sim_cache_key("lua", "scd", "w", "sim", None, {"x": (1, 2)})
        b = sim_cache_key("lua", "scd", "w", "sim", None, {"x": (1, 2)})
        c = sim_cache_key("lua", "scd", "w", "sim", None, {"x": (1, 3)})
        assert a == b != c

    def test_simjob_kwargs_tuple_order_irrelevant(self):
        job_a = SimJob(
            "fibo", "lua", "scd", kwargs=(("n", 5), ("check_output", False))
        )
        job_b = SimJob(
            "fibo", "lua", "scd", kwargs=(("check_output", False), ("n", 5))
        )
        assert job_a.cache_key() == job_b.cache_key()


class TestShardStability:
    def test_entry_path_stable_across_processes(self, tmp_path):
        """Pool workers must resolve a key to the same shard file."""
        cache = ResultCache("stable", root=tmp_path)
        key = sim_cache_key("lua", "scd", "fibo", "sim", cortex_a5(), {"n": 5})
        local = cache.entry_path(key)
        script = (
            "import sys\n"
            "from repro.harness.cache import ResultCache, sim_cache_key\n"
            "from repro.uarch.config import cortex_a5\n"
            f"cache = ResultCache('stable', root={str(tmp_path)!r})\n"
            "key = sim_cache_key('lua', 'scd', 'fibo', 'sim', cortex_a5(),"
            " {'n': 5})\n"
            "print(cache.entry_path(key))\n"
            "print(key)\n"
        )
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        remote_path, remote_key = remote.stdout.strip().splitlines()
        assert remote_key == key
        assert remote_path == str(local)

    def test_distinct_keys_shard_to_distinct_files(self, tmp_path):
        cache = ResultCache("spread", root=tmp_path)
        keys = [
            sim_cache_key("lua", "scd", f"w{i}", "sim", None, {})
            for i in range(64)
        ]
        paths = {cache.entry_path(key) for key in keys}
        assert len(paths) == len(keys)
