"""Tests for the extension features beyond the paper's core evaluation.

* ITTAGE indirect prediction (Related Work upper bound).
* JTE save/restore context-switch policy (Section IV alternative).
* Automatic JTE-cap selection (the paper's stated future work).
"""

import pytest

from repro.core.simulation import simulate
from repro.core.tuning import DEFAULT_CAPS, find_optimal_jte_cap, sweep_jte_caps
from repro.native.model import ModelRunner, get_model
from repro.uarch import Machine, cortex_a5
from repro.uarch.predictors import ItTagePredictor


class TestItTage:
    def test_learns_stable_target(self):
        predictor = ItTagePredictor()
        for _ in range(8):
            predictor.update(0x100, 0x700)
        assert predictor.predict(0x100) == 0x700

    def test_learns_history_correlated_targets(self):
        predictor = ItTagePredictor()
        # Target alternates deterministically: history should capture it.
        targets = [0x700, 0x800] * 200
        hits = 0
        for target in targets:
            if predictor.predict(0x100) == target:
                hits += 1
            predictor.update(0x100, target)
        assert hits > len(targets) * 0.6

    def test_beats_last_target_on_patterned_stream(self):
        from repro.uarch.btb import BranchTargetBuffer

        predictor = ItTagePredictor()
        btb = BranchTargetBuffer(entries=256, ways=2)
        pattern = [0x700, 0x800, 0x900] * 150
        ittage_hits = btb_hits = 0
        for target in pattern:
            if predictor.predict(0x100) == target:
                ittage_hits += 1
            predictor.update(0x100, target)
            if btb.lookup(0x100) == target:
                btb_hits += 1
            else:
                btb.insert(0x100, target)
        assert ittage_hits > btb_hits

    def test_cold_predicts_none(self):
        assert ItTagePredictor().predict(0x100) is None

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            ItTagePredictor(base_entries=0)

    def test_scheme_reduces_mpki_end_to_end(self):
        base = simulate("fibo", scheme="baseline", n=10, check_output=False)
        ittage = simulate("fibo", scheme="ittage", n=10, check_output=False)
        assert ittage.branch_mpki < base.branch_mpki * 0.7
        # Prediction-only: instruction count unchanged.
        assert ittage.instructions == base.instructions

    def test_scd_still_faster_than_ittage(self):
        ittage = simulate("fibo", scheme="ittage", n=11, check_output=False)
        scd = simulate("fibo", scheme="scd", n=11, check_output=False)
        assert scd.cycles < ittage.cycles


class TestSwitchPolicy:
    def test_save_preserves_hit_rate(self):
        flush = simulate(
            "fibo", scheme="scd", n=11, check_output=False,
            context_switch_interval=150, context_switch_policy="flush",
        )
        save = simulate(
            "fibo", scheme="scd", n=11, check_output=False,
            context_switch_interval=150, context_switch_policy="save",
        )
        assert save.bop_hit_rate > flush.bop_hit_rate

    def test_save_policy_charges_overhead(self):
        machine = Machine(cortex_a5())
        machine.load_op(5)
        machine.bop(0x100)
        machine.jru(0x120, 0x7000)
        machine.context_switch(save_jtes=True)
        assert machine.btb.jte_count == 1  # preserved
        assert machine.stats.cycle_breakdown["os_jte_save_restore"] > 0

    def test_invalid_policy_rejected(self):
        model = get_model("lua", "scd")
        with pytest.raises(ValueError, match="context-switch policy"):
            ModelRunner(model, Machine(cortex_a5()), context_switch_policy="drop")


class TestCapTuning:
    @pytest.fixture(scope="class")
    def small_config(self):
        return cortex_a5().with_changes(btb_entries=64)

    def test_sweep_evaluates_all_caps(self, small_config):
        result = sweep_jte_caps(
            "fibo", config=small_config, caps=(4, 16, None)
        )
        assert set(result.cycles_by_cap) == {4, 16, "inf"}
        assert result.evaluations == 4
        assert result.best_speedup > 1.0

    def test_sweep_best_is_minimum(self, small_config):
        result = sweep_jte_caps("fibo", config=small_config, caps=(4, 16, None))
        best_key = "inf" if result.best_cap is None else result.best_cap
        assert result.cycles_by_cap[best_key] == min(result.cycles_by_cap.values())

    def test_search_agrees_with_sweep(self, small_config):
        caps = (2, 4, 8, 16, None)
        swept = sweep_jte_caps("fibo", config=small_config, caps=caps)
        searched = find_optimal_jte_cap("fibo", config=small_config, caps=caps)
        best_key = "inf" if searched.best_cap is None else searched.best_cap
        # The searched optimum must be within 2% of the true optimum.
        true_best = min(swept.cycles_by_cap.values())
        assert searched.cycles_by_cap[best_key] <= true_best * 1.02

    def test_search_cheaper_than_sweep(self, small_config):
        searched = find_optimal_jte_cap("fibo", config=small_config)
        assert searched.evaluations <= len(DEFAULT_CAPS) + 1

    def test_default_caps_sorted_with_inf_last(self):
        assert DEFAULT_CAPS[-1] is None
        numeric = DEFAULT_CAPS[:-1]
        assert list(numeric) == sorted(numeric)
