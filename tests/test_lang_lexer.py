"""Unit tests for the scriptlet lexer."""

import pytest

from repro.lang.lexer import LexerError, Token, TokenType, tokenize


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]  # drop EOF


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [(TokenType.INT, 42)]

    def test_float(self):
        assert kinds("3.25") == [(TokenType.FLOAT, 3.25)]

    def test_float_exponent(self):
        assert kinds("1e3") == [(TokenType.FLOAT, 1000.0)]
        assert kinds("2.5e-2") == [(TokenType.FLOAT, 0.025)]

    def test_hex(self):
        assert kinds("0x3F") == [(TokenType.INT, 0x3F)]

    def test_leading_dot(self):
        assert kinds(".5") == [(TokenType.FLOAT, 0.5)]

    def test_number_then_concat_operator(self):
        # '..' must not be eaten as a decimal point.
        tokens = kinds('1 .. 2')
        assert tokens == [
            (TokenType.INT, 1),
            (TokenType.OP, ".."),
            (TokenType.INT, 2),
        ]

    def test_number_directly_followed_by_concat(self):
        tokens = kinds('1..2')
        assert tokens == [
            (TokenType.INT, 1),
            (TokenType.OP, ".."),
            (TokenType.INT, 2),
        ]


class TestStrings:
    def test_simple(self):
        assert kinds('"hello"') == [(TokenType.STRING, "hello")]

    def test_escapes(self):
        assert kinds(r'"a\tb\nc\\d\"e"') == [(TokenType.STRING, 'a\tb\nc\\d"e')]

    def test_unterminated(self):
        with pytest.raises(LexerError, match="unterminated"):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexerError, match="newline"):
            tokenize('"ab\ncd"')

    def test_unknown_escape(self):
        with pytest.raises(LexerError, match="unknown escape"):
            tokenize(r'"\q"')


class TestIdentifiersAndKeywords:
    def test_name(self):
        assert kinds("foo_bar2") == [(TokenType.NAME, "foo_bar2")]

    @pytest.mark.parametrize(
        "kw", ["fn", "var", "if", "else", "while", "for", "return", "break",
               "continue", "true", "false", "nil", "and", "or", "not"]
    )
    def test_keyword(self, kw):
        assert kinds(kw) == [(TokenType.KEYWORD, kw)]

    def test_keyword_prefix_is_name(self):
        assert kinds("iffy") == [(TokenType.NAME, "iffy")]


class TestOperators:
    def test_maximal_munch(self):
        assert [v for _, v in kinds("<= == != >= // ..")] == [
            "<=", "==", "!=", ">=", "//", "..",
        ]

    def test_floor_div_not_comment(self):
        # '//' is an operator; '#' starts comments.
        assert [v for _, v in kinds("7 // 2")] == [7, "//", 2]

    def test_all_single_chars(self):
        text = "( ) { } [ ] , ; : = < > + - * / %"
        values = [v for _, v in kinds(text)]
        assert values == text.split()


class TestCommentsAndLines:
    def test_comment_to_eol(self):
        assert kinds("1 # two three\n2") == [(TokenType.INT, 1), (TokenType.INT, 2)]

    def test_line_numbers(self):
        tokens = tokenize("1\n2\n\n3")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_eof_token(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestTokenMatches:
    def test_matches_type_only(self):
        token = Token(TokenType.INT, 5, 1)
        assert token.matches(TokenType.INT)
        assert not token.matches(TokenType.NAME)

    def test_matches_type_and_value(self):
        token = Token(TokenType.OP, "+", 1)
        assert token.matches(TokenType.OP, "+")
        assert not token.matches(TokenType.OP, "-")


def test_unexpected_character():
    with pytest.raises(LexerError, match="unexpected character"):
        tokenize("a ~ b")
