"""Unit tests for program/basic-block containers."""

import pytest

from repro.isa import Kind, ProgramLayout, assemble

DISPATCHER = """
Head:
    add r1, r2, r3
    ldq r5, 0(r4)
Fetch:
    ldl r9, 0(r5)
    stq r9, 8(r5)
Bound:
    cmpule r9, 45, r1
    beq r1, Error
Calc:
    s4addq r9, r7, r2
    jmp (r2)
Error:
    ret
"""


class TestBlockExtraction:
    def test_blocks_split_at_labels(self):
        program = assemble(DISPATCHER)
        names = [b.name for b in program.blocks]
        assert names == ["Head", "Fetch", "Bound", "Calc", "Error"]

    def test_terminators(self):
        program = assemble(DISPATCHER)
        assert program.block("Head").term is None  # falls through
        assert program.block("Bound").term.kind is Kind.BRANCH
        assert program.block("Calc").term.kind is Kind.JUMP_IND
        assert program.block("Error").term.kind is Kind.RET

    def test_counts(self):
        program = assemble(DISPATCHER)
        fetch = program.block("Fetch")
        assert fetch.n_insts == 2
        assert fetch.n_loads == 1
        assert fetch.n_stores == 1

    def test_block_after_control_flow_without_label(self):
        program = assemble("A:\nbeq r1, A\nadd r1, r2, r3\n")
        assert len(program.blocks) == 2
        # The fall-through block gets a synthesized name.
        assert program.blocks[1].name.startswith("A+")

    def test_block_pc_range(self):
        program = assemble(DISPATCHER, base=0x1000)
        head = program.block("Head")
        assert head.start_pc == 0x1000
        assert head.end_pc == 0x1008
        assert head.fall_through_pc == program.block("Fetch").start_pc

    def test_has_op_load_flag(self):
        program = assemble("X:\nldl.op r9, 0(r5)\nbop\n")
        assert program.block("X").has_op_load


class TestLookups:
    def test_block_by_name_missing(self):
        program = assemble(DISPATCHER)
        with pytest.raises(KeyError, match="no basic block named"):
            program.block("Missing")

    def test_block_at_pc(self):
        program = assemble(DISPATCHER, base=0x2000)
        assert program.block_at(0x2000).name == "Head"

    def test_block_at_bad_pc(self):
        program = assemble(DISPATCHER)
        with pytest.raises(KeyError):
            program.block_at(0xDEAD)

    def test_has_block(self):
        program = assemble(DISPATCHER)
        assert program.has_block("Calc")
        assert not program.has_block("Nope")

    def test_successor(self):
        program = assemble(DISPATCHER)
        assert program.successor(program.block("Head")).name == "Fetch"

    def test_size_bytes(self):
        program = assemble(DISPATCHER)
        assert program.size_bytes == len(program) * 4


class TestCategoryOnBlocks:
    def test_block_category_from_first_instruction(self):
        program = assemble(".category dispatch\nX:\nadd r1, r2, r3\nret\n")
        assert program.block("X").category == "dispatch"


class TestProgramLayout:
    def test_fragments_aligned(self):
        layout = ProgramLayout(base=0x1_0000, align=16)
        layout.add("A:\nnop\n")
        layout.add("B:\nnop\n")
        program = layout.assemble()
        assert program.labels["A"] % 16 == 0
        assert program.labels["B"] % 16 == 0
        assert program.labels["B"] > program.labels["A"]

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            ProgramLayout(align=6)

    def test_labels_shared_across_fragments(self):
        layout = ProgramLayout()
        layout.add("A:\nbr B\n")
        layout.add("B:\nret\n")
        program = layout.assemble()
        jump = program.block("A").term
        assert jump.target == program.labels["B"]
