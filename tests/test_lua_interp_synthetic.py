"""Execute hand-assembled bytecode: opcodes the compiler never emits.

The interpreter implements more of the Lua 5.3 set than the scriptlet
compiler uses (POW, the bitwise group, TESTSET); these tests drive them
through synthetic prototypes, and verify that the truly-unimplemented
remainder (upvalue/vararg machinery) fails loudly rather than silently.
"""

import pytest

from repro.vm.lua.compiler import CompiledModule, LuaProto
from repro.vm.lua.interp import LuaVM
from repro.vm.lua.opcodes import Op, RK_CONST_BIT, encode_abc, encode_abx, encode_asbx
from repro.vm.values import VmError


def run_proto(words, constants=(), max_regs=8):
    proto = LuaProto(
        name="synthetic",
        nparams=0,
        code=list(words),
        constants=list(constants),
        max_regs=max_regs,
    )
    proto.finalize()
    module = CompiledModule(protos=[proto], functions={})
    vm = LuaVM(module)
    vm.run()
    return vm


def k(index):
    return RK_CONST_BIT | index


class TestSyntheticArith:
    def test_pow(self):
        vm = run_proto(
            [
                encode_abc(Op.POW, 0, k(0), k(1)),
                encode_abc(Op.SETTABUP, 0, k(2), 0),
                encode_abc(Op.RETURN, 0, 1, 0),
            ],
            constants=[2, 10, "result"],
        )
        assert vm.globals["result"] == 1024.0

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.BAND, 0b1100, 0b1010, 0b1000),
            (Op.BOR, 0b1100, 0b1010, 0b1110),
            (Op.BXOR, 0b1100, 0b1010, 0b0110),
            (Op.SHL, 1, 4, 16),
            (Op.SHR, 64, 3, 8),
        ],
    )
    def test_bitops(self, op, a, b, expected):
        vm = run_proto(
            [
                encode_abc(op, 0, k(0), k(1)),
                encode_abc(Op.SETTABUP, 0, k(2), 0),
                encode_abc(Op.RETURN, 0, 1, 0),
            ],
            constants=[a, b, "result"],
        )
        assert vm.globals["result"] == expected

    def test_bnot(self):
        vm = run_proto(
            [
                encode_abx(Op.LOADK, 1, 0),
                encode_abc(Op.BNOT, 0, 1, 0),
                encode_abc(Op.SETTABUP, 0, k(1), 0),
                encode_abc(Op.RETURN, 0, 1, 0),
            ],
            constants=[5, "result"],
        )
        assert vm.globals["result"] == ~5

    def test_bitop_on_float_raises(self):
        with pytest.raises(VmError, match="integer"):
            run_proto(
                [
                    encode_abc(Op.BAND, 0, k(0), k(1)),
                    encode_abc(Op.RETURN, 0, 1, 0),
                ],
                constants=[1.5, 1],
            )


class TestTestset:
    def _testset_program(self, source_value):
        # R1 = source; TESTSET R0 R1 C=1: if truthy(R1) -> R0 = R1 else skip.
        return [
            encode_abx(Op.LOADK, 1, 0),
            encode_abx(Op.LOADK, 0, 1),
            encode_abc(Op.TESTSET, 0, 1, 1),
            encode_asbx(Op.JMP, 0, 0),  # skipped when test fails
            encode_abc(Op.SETTABUP, 0, k(2), 0),
            encode_abc(Op.RETURN, 0, 1, 0),
        ], [source_value, "default", "result"]

    def test_testset_copies_on_match(self):
        words, constants = self._testset_program(42)
        vm = run_proto(words, constants)
        assert vm.globals["result"] == 42

    def test_testset_skips_on_mismatch(self):
        words, constants = self._testset_program(False)
        vm = run_proto(words, constants)
        assert vm.globals["result"] == "default"


class TestUnimplementedOpcodesFailLoudly:
    @pytest.mark.parametrize(
        "op", [Op.GETUPVAL, Op.SETUPVAL, Op.CLOSURE, Op.VARARG, Op.TFORCALL,
               Op.TAILCALL, Op.SELF, Op.LOADKX, Op.EXTRAARG]
    )
    def test_raises_not_generated(self, op):
        if op in (Op.LOADKX, Op.CLOSURE, Op.EXTRAARG):
            word = encode_abx(op, 0, 0)
        else:
            word = encode_abc(op, 0, 0, 0)
        with pytest.raises(VmError, match="not generated"):
            run_proto([word, encode_abc(Op.RETURN, 0, 1, 0)])


class TestSyntheticControl:
    def test_loadbool_skip(self):
        # LOADBOOL with C=1 skips the next instruction.
        vm = run_proto(
            [
                encode_abc(Op.LOADBOOL, 0, 1, 1),
                encode_abx(Op.LOADK, 0, 0),  # skipped
                encode_abc(Op.SETTABUP, 0, k(1), 0),
                encode_abc(Op.RETURN, 0, 1, 0),
            ],
            constants=["overwritten", "result"],
        )
        assert vm.globals["result"] is True

    def test_jmp_offset(self):
        vm = run_proto(
            [
                encode_abx(Op.LOADK, 0, 0),
                encode_asbx(Op.JMP, 0, 1),
                encode_abx(Op.LOADK, 0, 1),  # jumped over
                encode_abc(Op.SETTABUP, 0, k(2), 0),
                encode_abc(Op.RETURN, 0, 1, 0),
            ],
            constants=["kept", "skipped", "result"],
        )
        assert vm.globals["result"] == "kept"

    def test_setlist_on_non_array_raises(self):
        with pytest.raises(VmError, match="SETLIST"):
            run_proto(
                [
                    encode_abx(Op.LOADK, 0, 0),
                    encode_abc(Op.SETLIST, 0, 1, 1),
                    encode_abc(Op.RETURN, 0, 1, 0),
                ],
                constants=[5],
            )
