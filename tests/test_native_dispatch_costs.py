"""Regression tests pinning the per-event dispatch instruction costs.

The paper's arithmetic hangs on these numbers: how many host instructions
each dispatch strategy spends per bytecode, and how many SCD's fast path
saves.  These tests execute exactly one guest bytecode per configuration
and count the dispatch-category instructions, so any accidental change to
the dispatcher assembly shows up immediately.
"""

import pytest

from repro.native.model import ModelRunner, get_model
from repro.uarch import Machine, cortex_a5
from repro.vm.trace import CALLEE_NONE, Site, TAKEN_NONE


def dispatch_insts_per_event(vm_kind, strategy, events):
    """Replay *events* and return dispatch instructions per event."""
    model = get_model(vm_kind, strategy)
    machine = Machine(cortex_a5())
    runner = ModelRunner(model, machine)
    runner.start()
    some_plain_op = 13 if vm_kind == "lua" else 27  # ADD in both tables
    for event in events:
        runner.on_event(*event)
    runner.finish()
    stats = machine.finalize()
    return stats.insts_by_category.get("dispatch", 0)


def plain_event(op, site=int(Site.MAIN)):
    return (op, site, TAKEN_NONE, CALLEE_NONE, (), None, None)


LUA_ADD = 13  # Op.ADD
JS_ADD = 27   # JsOp.ADD


class TestLuaDispatchCosts:
    def test_baseline_dispatch_is_17_instructions(self):
        # Loop header (4) + Figure 1(b)'s fetch 4 / decode 1 / bound 2 /
        # target-calc 5 + jmp 1 = 17 per bytecode.
        cost = dispatch_insts_per_event("lua", "baseline", [plain_event(LUA_ADD)])
        assert cost == 17

    def test_scd_slow_path_runs_full_dispatcher_plus_bop(self):
        # First dispatch of an opcode: fetch+bop miss, then the slow path.
        cost = dispatch_insts_per_event("lua", "scd", [plain_event(LUA_ADD)])
        assert cost == 18  # 17 + the bop attempt

    def test_scd_fast_path_is_9_instructions(self):
        two = dispatch_insts_per_event(
            "lua", "scd", [plain_event(LUA_ADD), plain_event(LUA_ADD)]
        )
        fast_path = two - 18
        # Figure 4's fast path: header 4 + fetch 4 (with .op) + bop 1.
        assert fast_path == 9

    def test_scd_saves_8_instructions_per_dispatch(self):
        baseline = dispatch_insts_per_event(
            "lua", "baseline", [plain_event(LUA_ADD)] * 50
        )
        scd = dispatch_insts_per_event("lua", "scd", [plain_event(LUA_ADD)] * 50)
        per_event_saving = (baseline - scd) / 50
        assert 7.5 < per_event_saving < 8.5

    def test_threaded_tail_is_15_instructions(self):
        # After the entry dispatch, each event runs the previous handler's
        # replicated 15-instruction tail.
        many = dispatch_insts_per_event(
            "lua", "threaded", [plain_event(LUA_ADD)] * 51
        )
        first = dispatch_insts_per_event("lua", "threaded", [plain_event(LUA_ADD)])
        assert (many - first) % 50 == 0
        assert (many - first) // 50 == 15


class TestJsDispatchCosts:
    def test_baseline_main_dispatch_is_29_instructions(self):
        # Section V: "the dispatch loop takes 29 native instructions".
        cost = dispatch_insts_per_event("js", "baseline", [plain_event(JS_ADD)])
        assert cost == 29

    def test_end_case_dispatch_is_shorter(self):
        main = dispatch_insts_per_event("js", "baseline", [plain_event(JS_ADD)])
        end_case = dispatch_insts_per_event(
            "js", "baseline", [plain_event(JS_ADD, site=int(Site.END_CASE))]
        )
        assert end_case < main

    def test_uncovered_site_pays_full_dispatch_under_scd(self):
        covered = dispatch_insts_per_event(
            "js", "scd", [plain_event(JS_ADD)] * 2
        )
        uncovered = dispatch_insts_per_event(
            "js", "scd", [plain_event(JS_ADD, site=int(Site.UNCOVERED))] * 2
        )
        assert uncovered > covered

    def test_scd_fast_path_saves_on_covered_sites(self):
        baseline = dispatch_insts_per_event(
            "js", "baseline", [plain_event(JS_ADD)] * 40
        )
        scd = dispatch_insts_per_event("js", "scd", [plain_event(JS_ADD)] * 40)
        assert scd < baseline * 0.65


class TestDispatchFractionConsistency:
    def test_figure1b_shape_in_program(self):
        """The baseline Lua dispatcher mirrors Figure 1(b)'s block shape."""
        model = get_model("lua", "baseline")
        dispatch = model.dispatchers[0]
        assert dispatch.fetch.n_insts == 4       # ldq/ldl/lda/stq
        assert dispatch.decode.n_insts == 1      # and r9, 63, r2
        assert dispatch.bound.n_insts == 2       # cmpule + beq
        assert dispatch.calc.n_insts == 6        # 5 calc + jmp
        assert dispatch.fetch.n_loads == 2
        assert dispatch.fetch.n_stores == 1

    def test_figure4_op_suffix_present(self):
        model = get_model("lua", "scd")
        assert model.dispatchers[0].fetch.has_op_load
        assert not get_model("lua", "baseline").dispatchers[0].fetch.has_op_load

    def test_masks_match_paper(self):
        # Section III-A: Lua mask 0x3F; JS opcode byte mask 0xFF.
        assert get_model("lua", "scd").opcode_mask == 0x3F
        assert get_model("js", "scd").opcode_mask == 0xFF
