"""Tests for the process-pool fan-out layer and the sharded result cache.

Covers the concurrency-sensitive properties the serial harness tests
cannot: parallel/serial numeric identity and ordering, failure
propagation with grid-point naming, concurrent cache population from
multiple processes, and tolerance of torn cache entries.
"""

import json
import multiprocessing

import pytest

from repro.core.simulation import simulate
from repro.harness.cache import ResultCache, sim_cache_key
from repro.harness.parallel import (
    METRICS,
    SimJob,
    SimJobError,
    execute_job,
    resolve_workers,
    run_jobs,
    set_default_workers,
)
from repro.uarch.config import cortex_a5

#: Tiny but non-trivial grid: two schemes x two workloads at explicit n.
SMALL = tuple(
    SimJob(w, "lua", scheme, kwargs=(("check_output", False), ("n", 8)))
    for w in ("fibo", "n-sieve")
    for scheme in ("baseline", "scd")
)


@pytest.fixture(autouse=True)
def _reset_parallel_state():
    METRICS.reset()
    set_default_workers(None)
    yield
    set_default_workers(None)


class TestSimJob:
    def test_cache_key_matches_canonical(self):
        job = SimJob("fibo", "lua", "scd", kwargs=(("n", 8),))
        assert job.cache_key() == sim_cache_key(
            "lua", "scd", "fibo", "sim", None, {"n": 8}
        )

    def test_default_config_aliases_explicit(self):
        implicit = SimJob("fibo", "lua", "scd")
        explicit = SimJob("fibo", "lua", "scd", config=cortex_a5())
        assert implicit.cache_key() == explicit.cache_key()

    def test_kwargs_order_does_not_matter(self):
        a = sim_cache_key("lua", "scd", "fibo", "sim", None, {"n": 8, "check_output": False})
        b = sim_cache_key("lua", "scd", "fibo", "sim", None, {"check_output": False, "n": 8})
        assert a == b

    def test_distinct_kwargs_distinct_keys(self):
        a = sim_cache_key("lua", "scd", "fibo", "sim", None, {"n": 8})
        b = sim_cache_key("lua", "scd", "fibo", "sim", None, {"n": 9})
        assert a != b


class TestRunJobs:
    def test_workers1_matches_direct_simulate(self, tmp_cache):
        (result,) = run_jobs([SMALL[0]], workers=1, cache=tmp_cache)
        direct = simulate("fibo", vm="lua", scheme="baseline", n=8, check_output=False)
        assert result == direct

    def test_parallel_matches_serial_in_order(self, tmp_path):
        serial = run_jobs(
            SMALL, workers=1, cache=ResultCache("serial", root=tmp_path)
        )
        parallel = run_jobs(
            SMALL, workers=2, cache=ResultCache("parallel", root=tmp_path)
        )
        assert parallel == serial
        for job, result in zip(SMALL, parallel):
            assert (result.workload, result.scheme) == (job.workload, job.scheme)

    def test_batch_dedupes_repeated_jobs(self, tmp_cache):
        job = SMALL[0]
        results = run_jobs([job, job, job], workers=1, cache=tmp_cache)
        assert results[0] == results[1] == results[2]
        assert METRICS.sims == 1

    def test_pool_populates_shared_cache(self, tmp_cache):
        run_jobs(SMALL, workers=2, cache=tmp_cache)
        again = ResultCache(tmp_cache.name)
        for job in SMALL:
            assert again.get(job.cache_key()) is not None

    def test_failure_names_grid_point_serial(self, tmp_cache):
        bad = SimJob("no-such-workload", "lua", "scd")
        with pytest.raises(SimJobError) as err:
            run_jobs([bad], workers=1, cache=tmp_cache)
        assert err.value.key == ("lua", "scd", "no-such-workload")
        assert "no-such-workload" in str(err.value)

    def test_failure_names_grid_point_pool(self, tmp_cache):
        bad = SimJob("no-such-workload", "lua", "scd")
        with pytest.raises(SimJobError) as err:
            run_jobs([SMALL[0], bad], workers=2, cache=tmp_cache)
        assert err.value.key == ("lua", "scd", "no-such-workload")

    def test_resolve_workers_priority(self, monkeypatch):
        # Pin the cap high so priority semantics are observable on any host.
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 8)
        assert resolve_workers(3) == 3
        set_default_workers(2)
        assert resolve_workers() == 2
        set_default_workers(None)
        monkeypatch.setenv("SCD_REPRO_JOBS", "5")
        assert resolve_workers() == 5
        monkeypatch.setenv("SCD_REPRO_JOBS", "junk")
        assert resolve_workers() >= 1

    def test_resolve_workers_capped_at_cpu_count(self, monkeypatch):
        """Oversubscribing a small host only adds pool overhead (the PR-1
        bench posted a 0.88x "speedup" at -j4 on one CPU), so every source
        of a worker count is capped at os.cpu_count()."""
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 2)
        assert resolve_workers(16) == 2
        set_default_workers(16)
        assert resolve_workers() == 2
        set_default_workers(None)
        monkeypatch.setenv("SCD_REPRO_JOBS", "16")
        assert resolve_workers() == 2
        monkeypatch.delenv("SCD_REPRO_JOBS")
        assert resolve_workers() == 2
        assert resolve_workers(0) == 1


class TestMetricsAndCallbacks:
    """The per-call metrics/on_result hooks the sweep service relies on."""

    def test_explicit_metrics_leave_singleton_untouched(self, tmp_cache):
        from repro.harness.parallel import ThroughputMetrics

        own = ThroughputMetrics()
        run_jobs(SMALL[:2], workers=1, cache=tmp_cache, metrics=own)
        assert own.sims == 2
        assert METRICS.sims == 0 and METRICS.cache_hits == 0

    def test_on_result_fires_once_per_distinct_key(self, tmp_cache):
        seen = []
        run_jobs(
            [SMALL[0], SMALL[0], SMALL[1]], workers=1, cache=tmp_cache,
            on_result=lambda key, result, meta: seen.append((key, meta)),
        )
        # The repeated job is one distinct key: two callbacks, not three.
        assert sorted(key for key, _ in seen) == sorted(
            {j.cache_key() for j in SMALL[:2]}
        )
        assert all(not meta.get("cached") for _, meta in seen)

    def test_on_result_reports_cache_hits(self, tmp_cache):
        run_jobs([SMALL[0]], workers=1, cache=tmp_cache)
        seen = []
        results = run_jobs(
            [SMALL[0]], workers=1, cache=tmp_cache,
            on_result=lambda key, result, meta: seen.append((result, meta)),
        )
        ((result, meta),) = seen
        assert meta.get("cached") is True
        assert result == results[0]

    def test_exhausted_failure_never_fires_on_result(self, tmp_cache):
        from repro.harness.parallel import run_jobs_partial

        bad = SimJob("no-such-workload", "lua", "scd")
        seen = []
        resolved, failures = run_jobs_partial(
            [bad, SMALL[0]], workers=1, cache=tmp_cache, retries=0,
            on_result=lambda key, result, meta: seen.append(key),
        )
        assert [job for job, _ in failures] == [bad]
        assert seen == [SMALL[0].cache_key()]


class TestRetryBackoffResolver:
    def test_malformed_env_warns_and_falls_back(self, monkeypatch):
        from repro.harness.parallel import (
            DEFAULT_RETRY_BACKOFF_S,
            _retry_backoff_s,
        )

        monkeypatch.setenv("SCD_REPRO_RETRY_BACKOFF", "soon-ish")
        with pytest.warns(RuntimeWarning, match="soon-ish"):
            backoff = _retry_backoff_s(1)
        assert backoff == DEFAULT_RETRY_BACKOFF_S

    def test_well_formed_env_is_silent(self, monkeypatch):
        import warnings

        from repro.harness.parallel import _retry_backoff_s

        monkeypatch.setenv("SCD_REPRO_RETRY_BACKOFF", "0.25")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _retry_backoff_s(1) == 0.25
            assert _retry_backoff_s(2) == 0.5


def _worker_put(root, name, job_args):
    cache = ResultCache(name, root=root)
    job = SimJob(*job_args, kwargs=(("check_output", False), ("n", 8)))
    execute_job(job, cache)


class TestConcurrentCache:
    def test_two_processes_share_one_store(self, tmp_path):
        """Two processes populating one cache directory concurrently: no
        corruption, both entries (including a raced duplicate) readable."""
        ctx = multiprocessing.get_context()
        grids = [
            [("fibo", "lua", "baseline"), ("fibo", "lua", "scd")],
            [("n-sieve", "lua", "baseline"), ("fibo", "lua", "scd")],
        ]
        procs = [
            ctx.Process(target=_worker_put, args=(str(tmp_path), "shared", g[i]))
            for g in grids
            for i in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        cache = ResultCache("shared", root=tmp_path)
        for w, vm, scheme in {g[i] for g in grids for i in range(2)}:
            key = sim_cache_key(vm, scheme, w, "sim", None,
                                {"check_output": False, "n": 8})
            result = cache.get(key)
            assert result is not None
            assert (result.workload, result.scheme) == (w, scheme)

    def test_corrupt_entry_reads_as_miss(self, tmp_cache):
        result = simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)
        tmp_cache.put("some-key", result)
        tmp_cache.entry_path("some-key").write_text('{"key": "some-key", "res')
        fresh = ResultCache(tmp_cache.name)
        assert fresh.get("some-key") is None
        fresh.put("some-key", result)  # recovers by overwriting
        assert ResultCache(tmp_cache.name).get("some-key") == result

    def test_miss_is_not_memoized(self, tmp_cache):
        """An entry written by another process after a miss is picked up
        on the next probe (the pre-v3 cache memoized the whole file and
        went permanently stale)."""
        result = simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)
        reader = ResultCache(tmp_cache.name)
        assert reader.get("late-key") is None
        tmp_cache.put("late-key", result)  # "another process" writes
        assert reader.get("late-key") == result

    def test_clear_removes_entries_and_tmp_strays(self, tmp_cache):
        result = simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)
        tmp_cache.put("k", result)
        stray = tmp_cache.entry_path("k").with_suffix(".json.999.tmp")
        stray.write_text("partial")
        tmp_cache.clear()
        assert not tmp_cache.path.exists()
        assert not stray.exists()
        assert tmp_cache.get("k") is None

    def test_entry_payload_is_self_describing(self, tmp_cache):
        result = simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)
        tmp_cache.put("k", result)
        payload = json.loads(tmp_cache.entry_path("k").read_text())
        assert payload["key"] == "k"
        assert payload["result"]["workload"] == "fibo"
