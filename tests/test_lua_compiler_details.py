"""White-box tests of the Lua compiler's code shapes and RK discipline."""

import pytest

from repro.lang import parse
from repro.vm.lua import CompileError, LuaVM, Op, compile_module
from repro.vm.lua.opcodes import RK_CONST_BIT, decode


def ops_of(source, proto="main"):
    module = compile_module(parse(source))
    target = module.main if proto == "main" else module.functions[proto]
    return [decode(w) for w in target.code]


class TestRkOperands:
    def test_small_constants_inline_as_rk(self):
        decoded = ops_of("var x = 0; x = x + 1;")
        adds = [d for d in decoded if d[0] == Op.ADD]
        # Interned constant 1 referenced through an RK operand.
        assert adds and adds[0][3] & RK_CONST_BIT

    def test_constants_interned(self):
        module = compile_module(parse("print(7 + 7 + 7);"))
        assert module.main.constants.count(7) == 1

    def test_distinct_types_not_merged(self):
        module = compile_module(parse("print(1 / 1.0);"))
        constants = module.main.constants
        assert 1 in constants and 1.0 in constants
        ints = [c for c in constants if isinstance(c, int) and not isinstance(c, bool)]
        floats = [c for c in constants if isinstance(c, float)]
        assert len(ints) == 1 and len(floats) == 1

    def test_true_and_one_distinct(self):
        # bool/int interning must not conflate True with 1.
        src = "var a = true; var b = 1; print(a); print(b);"
        assert LuaVM.from_source(src).run() == ["true", "1"]


class TestRegisterDiscipline:
    def test_temporaries_released(self):
        # A long statement sequence must not grow the frame unboundedly.
        statements = "\n".join(f"x = x + {i};" for i in range(1, 60))
        module = compile_module(parse(f"fn f() {{ var x = 0; {statements} return x; }}"))
        assert module.functions["f"].max_regs < 12

    def test_deep_expression_nesting(self):
        expr = "1"
        for _ in range(30):
            expr = f"({expr} + 1)"
        out = LuaVM.from_source(f"print({expr});").run()
        assert out == ["31"]

    def test_register_overflow_detected(self):
        expr = " .. ".join(f'"{i}"' for i in range(230))
        with pytest.raises(CompileError, match="registers"):
            compile_module(parse(f"var s = {expr};"))

    def test_params_occupy_first_registers(self):
        module = compile_module(parse("fn f(a, b, c) { return c; }"))
        proto = module.functions["f"]
        assert proto.nparams == 3
        # RETURN reads R2 (the third parameter).
        returns = [decode(w) for w in proto.code if w & 0x3F == Op.RETURN]
        assert returns[0][1] == 2


class TestJumpPatching:
    def test_while_backward_jump(self):
        decoded = ops_of("var i = 0; while (i < 3) { i = i + 1; }")
        jumps = [(i, d) for i, d in enumerate(decoded) if d[0] == Op.JMP]
        assert any(d[5] < 0 for _i, d in jumps)  # a backward JMP exists

    def test_if_without_else_single_forward_jump(self):
        decoded = ops_of("if (1 < 2) { print(1); }")
        jumps = [d for d in decoded if d[0] == Op.JMP]
        assert all(d[5] >= 0 for d in jumps)

    def test_forprep_points_at_forloop(self):
        decoded = ops_of("for i = 1, 3 { print(i); }")
        prep_index = next(i for i, d in enumerate(decoded) if d[0] == Op.FORPREP)
        prep_sbx = decoded[prep_index][5]
        target = prep_index + 1 + prep_sbx
        assert decoded[target][0] == Op.FORLOOP

    def test_forloop_jumps_back_to_body(self):
        decoded = ops_of("for i = 1, 3 { print(i); }")
        loop_index = next(i for i, d in enumerate(decoded) if d[0] == Op.FORLOOP)
        sbx = decoded[loop_index][5]
        assert sbx < 0


class TestGlobalsVsLocals:
    def test_top_level_var_becomes_global(self):
        decoded = ops_of("var g = 1;")
        assert any(d[0] == Op.SETTABUP for d in decoded)

    def test_function_var_is_register_local(self):
        module = compile_module(parse("fn f() { var x = 1; return x; }"))
        ops = [w & 0x3F for w in module.functions["f"].code]
        assert Op.SETTABUP not in ops

    def test_global_read_in_function(self):
        module = compile_module(parse("var g = 1; fn f() { return g; }"))
        ops = [w & 0x3F for w in module.functions["f"].code]
        assert Op.GETTABUP in ops


class TestCallShapes:
    def test_call_abc_fields(self):
        decoded = ops_of("fn f(a, b) { return a; } print(f(1, 2));", proto="main")
        calls = [d for d in decoded if d[0] == Op.CALL]
        # f(1,2): B = nargs+1 = 3; result wanted: C = 2.
        assert any(d[2] == 3 and d[3] == 2 for d in calls)

    def test_statement_call_discards_result(self):
        decoded = ops_of("fn f() { } f();")
        calls = [d for d in decoded if d[0] == Op.CALL]
        assert any(d[3] == 1 for d in calls)  # C=1: no results

    def test_nested_call_argument(self):
        src = "fn f(x) { return x + 1; } print(f(f(f(0))));"
        assert LuaVM.from_source(src).run() == ["3"]


class TestLogicalCompilation:
    def test_and_or_testset_shapes(self):
        decoded = ops_of("var a = 1; var b = a and 2; var c = a or 3;")
        tests = [d for d in decoded if d[0] == Op.TEST]
        assert len(tests) == 2
        # and: skip-JMP when truthy (C=0); or: skip when falsey (C=1).
        assert {d[3] for d in tests} == {0, 1}

    def test_deeply_mixed_logic(self):
        src = "print((1 and nil) or (false or 5) and 6);"
        assert LuaVM.from_source(src).run() == ["6"]


class TestEdgeCases:
    def test_empty_program(self):
        assert LuaVM.from_source("").run() == []

    def test_only_functions_no_toplevel(self):
        assert LuaVM.from_source("fn f() { return 1; }").run() == []

    def test_return_at_top_level_of_function_body(self):
        src = "fn f() { return 1; return 2; } print(f());"
        assert LuaVM.from_source(src).run() == ["1"]

    def test_loadnil(self):
        # Locals initialised to nil use LOADNIL (globals go through an RK
        # constant instead).
        module = compile_module(parse("fn f() { var x = nil; return x; }"))
        ops = [w & 0x3F for w in module.functions["f"].code]
        assert Op.LOADNIL in ops

    def test_self_assignment_no_move(self):
        module = compile_module(parse("fn f(a) { a = a; return a; }"))
        # MOVE with identical src/dst registers is elided.
        moves = [
            decode(w)
            for w in module.functions["f"].code
            if w & 0x3F == Op.MOVE
        ]
        assert all(m[1] != m[2] for m in moves)
