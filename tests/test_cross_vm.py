"""Cross-VM equivalence: both guest VMs must compute identical outputs.

The benchmarks rely on this property (one source, two interpreters), so it
gets both example-based and property-based coverage.
"""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import run_both, run_js, run_lua

PROGRAMS = [
    "print(((1 + 2) * 3 - 4) // 2 % 3);",
    "var x = 10; while (x > 0) { x = x - 3; } print(x);",
    'var s = ""; for i = 1, 5 { s = s .. i .. ","; } print(s);',
    "fn gcd(a, b) { if (b == 0) { return a; } return gcd(b, a % b); } print(gcd(48, 36));",
    "var a = []; for i = 0, 9 { a[i] = i * i; } var t = 0; for i = 0, 9 { t = t + a[i]; } print(t);",
    'var m = {}; m["k"] = 1; m[2] = "two"; print(m["k"] .. m[2]);',
    "print(1 < 2 and 3 >= 3 or false);",
    "print(not (nil or false));",
    "var n = 0; for i = 1, 100 { if (i % 7 == 0) { n = n + 1; } } print(n);",
    "print(sqrt(2.0) * sqrt(2.0));",
    "print(min(3, max(1, 2)));",
    'print(substr("abcdef", 2, 3));',
    "print(floor(-2.5) .. \" \" .. ceil(-2.5));",
    "var big = 1; for i = 1, 25 { big = big * 3; } print(big);",
    'print(chr(ord("A") + 1));',
    "fn apply_twice(x) { return x + x; } print(apply_twice(apply_twice(3)));",
    "var x = 5; x = x; print(x);",
    "print(0.1 + 0.2);",
    "print(len([]) + len({}) + len(\"\"));",
    "var q = nil; if (q == nil) { q = 1; } print(q);",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_cross_vm_programs(source):
    run_both(source)


class TestCrossVmArithmeticProperty:
    @staticmethod
    def _literal(value):
        if isinstance(value, float):
            return repr(value)
        return str(value)

    @given(
        a=st.integers(-50, 50),
        b=st.integers(1, 30),
        c=st.integers(-20, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_integer_expressions(self, a, b, c):
        source = f"print(({a} + {c}) * {b}); print({a} % {b}); print({a} // {b});"
        run_both(source)

    @given(
        a=st.floats(-100, 100, allow_nan=False),
        b=st.floats(0.5, 100, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_float_expressions(self, a, b):
        source = f"print({a!r} + {b!r}); print({a!r} * {b!r}); print({a!r} / {b!r});"
        run_both(source)

    @given(
        values=st.lists(st.integers(-9, 9), min_size=1, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_array_sums(self, values):
        items = ", ".join(str(v) for v in values)
        source = (
            f"var a = [{items}]; var s = 0; "
            f"for i = 0, len(a) - 1 {{ s = s + a[i]; }} print(s);"
        )
        assert run_both(source) == [str(sum(values))]

    @given(
        start=st.integers(-10, 10),
        stop=st.integers(-10, 10),
        step=st.integers(-4, 4).filter(lambda s: s != 0),
    )
    @settings(max_examples=40, deadline=None)
    def test_for_loop_trip_counts(self, start, stop, step):
        source = (
            f"var n = 0; for i = {start}, {stop}, {step} {{ n = n + 1; }} print(n);"
        )
        # Lua numeric-for semantics (inclusive limit).
        expected = 0
        i = start
        while (i <= stop) if step > 0 else (i >= stop):
            expected += 1
            i += step
        assert run_both(source) == [str(expected)]

    @given(text=st.text(alphabet="abcXYZ09 ", max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_string_roundtrip(self, text):
        source = f'print("{text}" .. len("{text}"));'
        assert run_both(source) == [text + str(len(text))]


def test_step_counts_differ_between_vms():
    # Same program, different bytecode mixes: the stack VM takes more steps.
    source = "var s = 0; for i = 1, 50 { s = s + i; } print(s);"
    from repro.vm.js import JsVM
    from repro.vm.lua import LuaVM

    lua = LuaVM.from_source(source)
    js = JsVM.from_source(source)
    assert lua.run() == js.run()
    assert js.steps > lua.steps
