"""Fault-injected end-to-end tests for the harness fault-tolerance layer.

Every degraded path — a worker killed mid-sweep, a job that raises, a
corrupted result or trace shard, a timed-out job — must (a) recover
without aborting the sweep, (b) produce ``SimResult``s byte-identical to
a clean serial run, and (c) leave an audit trail: retry/timeout/death/
quarantine counts in ``METRICS`` and a readable ``.reason.txt`` sidecar
next to every quarantined entry.  A grid point that exhausts its retry
budget must surface as one aggregated :class:`SimJobsFailed` naming
every failed key.
"""

import json
import os
import time

import pytest

from repro.harness import faults
from repro.harness.cache import ResultCache, TraceStore
from repro.harness.faults import FaultPlan, FaultSpec, InjectedFault, parse_specs
from repro.harness.parallel import (
    METRICS,
    SimJob,
    SimJobError,
    SimJobsFailed,
    resolve_job_timeout,
    resolve_retries,
    resolve_workers,
    run_jobs,
    set_default_job_timeout,
    set_default_retries,
    set_default_workers,
)

#: Tiny but non-trivial grid: two schemes x two workloads at explicit n.
GRID = tuple(
    SimJob(w, "lua", scheme, kwargs=(("check_output", False), ("n", 8)))
    for w in ("fibo", "n-sieve")
    for scheme in ("baseline", "scd")
)

@pytest.fixture
def pool_cpus(monkeypatch):
    """Pretend >= 2 CPUs so run_jobs takes the pooled path on any host
    (the cpu cap in resolve_workers is a perf heuristic, not a
    correctness constraint)."""
    monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 2)


needs_pool = pytest.mark.usefixtures("pool_cpus")


def result_bytes(results) -> list[str]:
    """Canonical byte-level rendering of a result list."""
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


@pytest.fixture(autouse=True)
def _isolate_fault_state(monkeypatch, tmp_path):
    """No backoff sleeps, no ambient faults, clean counters/overrides."""
    METRICS.reset()
    set_default_workers(None)
    set_default_retries(None)
    set_default_job_timeout(None)
    monkeypatch.setenv("SCD_REPRO_RETRY_BACKOFF", "0")
    monkeypatch.delenv("SCD_FAULT", raising=False)
    monkeypatch.delenv("SCD_FAULT_DIR", raising=False)
    monkeypatch.delenv("SCD_REPRO_JOBS", raising=False)
    monkeypatch.delenv("SCD_REPRO_RETRIES", raising=False)
    monkeypatch.delenv("SCD_REPRO_JOB_TIMEOUT", raising=False)
    faults.reset_plan_cache()
    yield
    faults.reset_plan_cache()
    set_default_retries(None)
    set_default_job_timeout(None)
    set_default_workers(None)


def arm(monkeypatch, tmp_path, spec: str) -> None:
    """Activate fault injection *spec* with counters under tmp_path."""
    monkeypatch.setenv("SCD_FAULT", spec)
    monkeypatch.setenv("SCD_FAULT_DIR", str(tmp_path / "fault-state"))
    faults.reset_plan_cache()


def disarm(monkeypatch) -> None:
    monkeypatch.delenv("SCD_FAULT", raising=False)
    faults.reset_plan_cache()


class TestFaultSpecParsing:
    def test_simple_specs(self):
        assert FaultSpec.parse("kill-worker:2") == FaultSpec("kill-worker", 2)
        assert FaultSpec.parse("fail-job:0") == FaultSpec("fail-job", 0)
        assert FaultSpec.parse("corrupt-shard:7") == FaultSpec("corrupt-shard", 7)
        assert FaultSpec.parse("delay-job:1:0.5") == FaultSpec(
            "delay-job", 1, 0.5
        )

    def test_spec_list(self):
        specs = parse_specs("kill-worker:2, corrupt-shard:0")
        assert [s.kind for s in specs] == ["kill-worker", "corrupt-shard"]

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:1",          # unknown kind
            "kill-worker",        # missing tick
            "kill-worker:x",      # non-integer tick
            "kill-worker:-1",     # negative tick
            "kill-worker:1:2",    # extra field
            "delay-job:1",        # missing delay
            "delay-job:1:x",      # bad delay
            "delay-job:1:-2",     # negative delay
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)


class TestFaultPlan:
    def test_ticks_shared_across_plans(self, tmp_path):
        """Two plans on one state dir model two processes of one run:
        every tick is claimed exactly once, monotonically."""
        a = FaultPlan((), tmp_path)
        b = FaultPlan((), tmp_path)
        claims = [a._claim("job"), b._claim("job"), a._claim("job")]
        assert claims == [0, 1, 2]
        assert b._claim("shard") == 0  # independent counter

    def test_fail_job_fires_on_its_tick_only(self, tmp_path):
        plan = FaultPlan([FaultSpec("fail-job", 1)], tmp_path)
        plan.on_job_start(GRID[0])  # tick 0: clean
        with pytest.raises(InjectedFault, match="tick 1"):
            plan.on_job_start(GRID[0])  # tick 1: boom
        plan.on_job_start(GRID[0])  # tick 2: one-shot, clean again

    def test_kill_worker_skipped_in_main_process(self, tmp_path):
        """The kill targets workers; in the parent it must be a no-op
        (otherwise a 1-CPU serial fallback would kill the whole sweep)."""
        plan = FaultPlan([FaultSpec("kill-worker", 0)], tmp_path)
        plan.on_job_start(GRID[0])  # would os._exit if mis-targeted

    def test_corrupt_shard_stamps_garbage(self, tmp_path):
        plan = FaultPlan([FaultSpec("corrupt-shard", 0)], tmp_path)
        shard = tmp_path / "entry.json"
        shard.write_text('{"key": "k"}')
        plan.on_shard_write(shard)
        assert shard.read_bytes() == faults.CORRUPTION_STAMP

    def test_no_plan_without_env(self):
        assert faults.get_plan() is None

    def test_plan_exports_state_dir(self, monkeypatch):
        monkeypatch.setenv("SCD_FAULT", "fail-job:99")
        faults.reset_plan_cache()
        plan = faults.get_plan()
        assert plan is not None
        # The parent exports the auto-created dir so forked workers
        # share one tick counter.
        assert os.environ["SCD_FAULT_DIR"] == str(plan.state_dir)


class TestInjectedJobFailureRetry:
    def test_failed_job_retried_to_identical_result(
        self, tmp_path, monkeypatch
    ):
        clean = run_jobs(
            GRID[:2], workers=1, cache=ResultCache("clean", root=tmp_path)
        )
        arm(monkeypatch, tmp_path, "fail-job:0")
        retried = run_jobs(
            GRID[:2], workers=1, cache=ResultCache("faulty", root=tmp_path)
        )
        assert result_bytes(retried) == result_bytes(clean)
        assert METRICS.retries >= 1

    def test_exhausted_retries_raise_one_aggregated_error(self, tmp_path):
        good = GRID[0]
        bad = [
            SimJob("no-such-workload", "lua", scheme)
            for scheme in ("baseline", "scd")
        ]
        cache = ResultCache("agg", root=tmp_path)
        with pytest.raises(SimJobsFailed) as err:
            run_jobs([good] + bad, workers=1, cache=cache, retries=1)
        assert isinstance(err.value, SimJobError)  # old handlers still work
        assert set(err.value.keys) == {
            ("lua", "baseline", "no-such-workload"),
            ("lua", "scd", "no-such-workload"),
        }
        message = str(err.value)
        assert message.count("no-such-workload") >= 2
        assert "Traceback" in message
        # retries=1 -> two attempts per failing point.
        assert METRICS.retries == 2
        # The good grid point was salvaged into the shared cache.
        assert err.value.completed == 1
        assert ResultCache("agg", root=tmp_path).get(good.cache_key()) is not None

    @needs_pool
    def test_exhausted_retries_aggregate_in_pool(self, tmp_path):
        bad = [
            SimJob("no-such-workload", "lua", scheme)
            for scheme in ("baseline", "scd")
        ]
        with pytest.raises(SimJobsFailed) as err:
            run_jobs(
                [GRID[0]] + bad,
                workers=2,
                cache=ResultCache("agg-pool", root=tmp_path),
                retries=1,
            )
        assert set(err.value.keys) == {
            ("lua", "baseline", "no-such-workload"),
            ("lua", "scd", "no-such-workload"),
        }
        assert err.value.completed >= 1


class TestWorkerKill:
    @needs_pool
    def test_killed_worker_salvage_and_retry(self, tmp_path, monkeypatch):
        """An OOM-kill-shaped worker death mid-sweep: completed futures
        are salvaged, the lost grid points re-run on a fresh pool, and
        the sweep's results are byte-identical to a clean serial run."""
        serial = run_jobs(
            GRID, workers=1, cache=ResultCache("serial", root=tmp_path)
        )
        METRICS.reset()
        arm(monkeypatch, tmp_path, "kill-worker:1")
        survived = run_jobs(
            GRID, workers=2, cache=ResultCache("killed", root=tmp_path)
        )
        assert result_bytes(survived) == result_bytes(serial)
        assert METRICS.worker_deaths >= 1
        assert METRICS.retries >= 1

    @needs_pool
    def test_kill_metrics_reach_cli_footer(self, tmp_path, monkeypatch):
        arm(monkeypatch, tmp_path, "kill-worker:0")
        run_jobs(GRID, workers=2, cache=ResultCache("footer", root=tmp_path))
        line = METRICS.summary(wall_s=1.0)
        assert "worker death" in line
        assert "retried" in line


class TestJobTimeout:
    @needs_pool
    def test_delayed_job_times_out_and_retries(self, tmp_path, monkeypatch):
        """A wedged job trips its per-job timeout; the pool is torn down
        (no leaked sleeper keeps running), the grid point is retried and
        the sweep still matches a clean serial run."""
        serial = run_jobs(
            GRID[:2], workers=1, cache=ResultCache("serial", root=tmp_path)
        )
        METRICS.reset()
        arm(monkeypatch, tmp_path, "delay-job:0:30")
        survived = run_jobs(
            GRID[:2],
            workers=2,
            cache=ResultCache("delayed", root=tmp_path),
            job_timeout=2.0,
        )
        assert result_bytes(survived) == result_bytes(serial)
        assert METRICS.timeouts >= 1

    def test_timeout_resolution(self, monkeypatch):
        assert resolve_job_timeout(None) is None
        assert resolve_job_timeout(1.5) == 1.5
        assert resolve_job_timeout(0) is None  # non-positive disables
        monkeypatch.setenv("SCD_REPRO_JOB_TIMEOUT", "2.5")
        assert resolve_job_timeout() == 2.5
        monkeypatch.setenv("SCD_REPRO_JOB_TIMEOUT", "soon")
        with pytest.warns(RuntimeWarning, match="SCD_REPRO_JOB_TIMEOUT"):
            assert resolve_job_timeout() is None

    def test_retries_resolution(self, monkeypatch):
        assert resolve_retries(0) == 0
        assert resolve_retries(-2) == 0
        monkeypatch.setenv("SCD_REPRO_RETRIES", "5")
        assert resolve_retries() == 5
        monkeypatch.setenv("SCD_REPRO_RETRIES", "lots")
        with pytest.warns(RuntimeWarning, match="SCD_REPRO_RETRIES"):
            assert resolve_retries() == 2


class TestShardQuarantine:
    def test_corrupt_result_entry_quarantined_with_reason(self, tmp_path):
        cache = ResultCache("q", root=tmp_path)
        (clean,) = run_jobs([GRID[0]], workers=1, cache=cache)
        path = cache.entry_path(GRID[0].cache_key())
        path.write_text('{"key": "q", "res')  # torn mid-write
        before = METRICS.quarantined
        fresh = ResultCache("q", root=tmp_path)
        assert fresh.get(GRID[0].cache_key()) is None
        assert not path.exists()
        quarantined = tmp_path / "quarantine" / "q" / path.name
        assert quarantined.exists()
        reason = quarantined.with_name(quarantined.name + ".reason.txt")
        assert "reason:" in reason.read_text()
        assert METRICS.quarantined == before + 1
        # The slot is reusable: a re-run recomputes and re-populates it.
        (again,) = run_jobs([GRID[0]], workers=1, cache=fresh)
        assert result_bytes([again]) == result_bytes([clean])

    def test_corrupt_trace_entry_quarantined_with_reason(self, tmp_path):
        from repro.core.simulation import simulate

        store = TraceStore(root=tmp_path)
        recorded = simulate(
            "fibo", vm="lua", scheme="baseline", n=8, check_output=False,
            trace_store=store, trace_mode="record",
        )
        entries = list(store.path.glob("*.bin"))
        assert entries
        entries[0].write_bytes(b"garbage" * 16)
        fresh = TraceStore(root=tmp_path)
        # Probe through the public surface: a fresh simulate in auto mode
        # must treat the corrupt trace as a miss and re-record it.
        result = simulate(
            "fibo", vm="lua", scheme="baseline", n=8, check_output=False,
            trace_store=fresh, trace_mode="auto",
        )
        assert result.to_dict() == recorded.to_dict()
        quarantine_dir = tmp_path / "quarantine" / "traces"
        files = list(quarantine_dir.glob("*.bin"))
        assert len(files) == 1
        reason = files[0].with_name(files[0].name + ".reason.txt")
        assert "reason:" in reason.read_text()

    def test_corrupt_memo_entry_quarantined_with_reason(self, tmp_path):
        """A bit-flipped persisted memo shard fails its CRC frame on
        read, moves to quarantine, and the replay falls back to an empty
        memo with byte-identical results."""
        from repro.core.simulation import simulate
        from repro.harness.cache import MemoStore

        source = (
            'var i = 0;\nwhile (i < 5000) { i = i + 1; }\n'
            'print("done " .. i);\n'
        )
        store = TraceStore(root=tmp_path)
        memos = MemoStore(root=tmp_path)
        simulate(
            "loop", vm="lua", scheme="scd", source=source,
            trace_store=store, trace_mode="record",
        )
        reference = simulate(
            "loop", vm="lua", scheme="scd", source=source,
            trace_store=store, trace_mode="replay", memo_store=memos,
        )
        entries = list(memos.path.glob("*.bin"))
        assert entries
        blob = bytearray(entries[0].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        entries[0].write_bytes(bytes(blob))
        before = METRICS.quarantined
        fresh = MemoStore(root=tmp_path)
        meta: dict = {}
        result = simulate(
            "loop", vm="lua", scheme="scd", source=source,
            trace_store=TraceStore(root=tmp_path), trace_mode="replay",
            memo_store=fresh, metrics=meta,
        )
        assert meta["memo_loaded"] == 0
        assert result.to_dict() == reference.to_dict()
        assert METRICS.quarantined == before + 1
        quarantine_dir = tmp_path / "quarantine" / "memos"
        files = list(quarantine_dir.glob("*.bin"))
        assert len(files) == 1
        reason = files[0].with_name(files[0].name + ".reason.txt")
        assert "reason:" in reason.read_text()
        # The slot was re-learned and re-persisted by the fallback run.
        assert list(fresh.path.glob("*.bin"))

    def test_missing_entry_is_not_quarantined(self, tmp_path):
        cache = ResultCache("missing", root=tmp_path)
        assert cache.get("never-written") is None
        assert not (tmp_path / "quarantine").exists()

    def test_injected_result_shard_corruption_end_to_end(
        self, tmp_path, monkeypatch
    ):
        """corrupt-shard fault on the first write (trace cache off, so
        that write is a result entry): the sweep that wrote it is
        unaffected, the next sweep quarantines it, recomputes, and both
        agree byte-for-byte."""
        monkeypatch.setenv("SCD_REPRO_TRACE", "off")
        arm(monkeypatch, tmp_path, "corrupt-shard:0")
        first = run_jobs(
            GRID[:2], workers=1, cache=ResultCache("e2e", root=tmp_path)
        )
        disarm(monkeypatch)
        second = run_jobs(
            GRID[:2], workers=1, cache=ResultCache("e2e", root=tmp_path)
        )
        assert result_bytes(second) == result_bytes(first)
        assert METRICS.quarantined == 1
        assert list((tmp_path / "quarantine" / "e2e").glob("*.json"))

    def test_injected_trace_shard_corruption_end_to_end(
        self, tmp_path, monkeypatch
    ):
        """corrupt-shard fault on the first write in auto trace mode: that
        write is the recorded trace; the next sweep quarantines it,
        re-records, and results stay byte-identical."""
        arm(monkeypatch, tmp_path, "corrupt-shard:0")
        first = run_jobs(
            GRID[:2], workers=1, cache=ResultCache("e2e-trace", root=tmp_path)
        )
        disarm(monkeypatch)
        second = run_jobs(
            GRID[:2], workers=1, cache=ResultCache("e2e-trace2", root=tmp_path)
        )
        assert result_bytes(second) == result_bytes(first)
        assert METRICS.quarantined == 1
        assert list((tmp_path / "quarantine" / "traces").glob("*.bin"))


class TestStaleTmpSweep:
    def test_stale_tmp_swept_fresh_kept(self, tmp_path):
        from repro.harness.cache import CACHE_VERSION

        store_dir = tmp_path / f"v{CACHE_VERSION}" / "sweep"
        store_dir.mkdir(parents=True)
        stale = store_dir / "aa.json.123.tmp"
        stale.write_text("partial write of a crashed worker")
        long_ago = time.time() - 3600
        os.utime(stale, (long_ago, long_ago))
        inflight = store_dir / "bb.json.124.tmp"
        inflight.write_text("live sibling's in-flight write")
        soon = time.time() + 3600
        os.utime(inflight, (soon, soon))

        cache = ResultCache("sweep", root=tmp_path)
        assert cache.tmp_swept == 1
        assert not stale.exists()
        assert inflight.exists()


class TestWorkerCountValidation:
    @pytest.mark.parametrize("bad", ["0", "-3", "junk", "2.5"])
    def test_bad_env_value_warned_and_ignored(self, bad, monkeypatch):
        monkeypatch.setattr(
            "repro.harness.parallel.os.cpu_count", lambda: 4
        )
        monkeypatch.setenv("SCD_REPRO_JOBS", bad)
        with pytest.warns(RuntimeWarning) as warned:
            assert resolve_workers() == 4  # falls back to the CPU count
        assert any(
            "SCD_REPRO_JOBS" in str(w.message) and bad in str(w.message)
            for w in warned
        )

    def test_good_env_value_still_honoured(self, monkeypatch):
        monkeypatch.setattr(
            "repro.harness.parallel.os.cpu_count", lambda: 8
        )
        monkeypatch.setenv("SCD_REPRO_JOBS", "3")
        assert resolve_workers() == 3


class TestTraceModeEnvValidation:
    def test_bad_env_mode_warned_and_ignored(self, monkeypatch):
        from repro.vm.capture import resolve_trace_mode

        monkeypatch.setenv("SCD_REPRO_TRACE", "sometimes")
        with pytest.warns(RuntimeWarning, match="SCD_REPRO_TRACE"):
            assert resolve_trace_mode() == "auto"
