"""Behavioural tests for the JS-like stack VM."""

import pytest

from repro.lang import parse
from repro.vm.js import JsCompileError, JsOp, JsVM, compile_module_js
from repro.vm.trace import CALLEE_BUILTIN, CALLEE_SCRIPT, Site
from repro.vm.values import VmError

from conftest import run_js


class TestBasics:
    def test_arithmetic(self):
        assert run_js("print(2 * (3 + 4));") == ["14"]

    def test_division_semantics_match_lua(self):
        assert run_js("print(1 / 2); print(7 // 2); print(-7 % 3);") == [
            "0.5", "3", "2",
        ]

    def test_string_concat(self):
        assert run_js('print("n=" .. 42);') == ["n=42"]

    def test_small_int_encodings(self):
        # ZERO / ONE / INT8 / INT32 / DOUBLE-atom paths all work.
        assert run_js("print(0 + 1 + 100 + 100000 + 10000000000);") == ["10000100101"]

    def test_negative_int8(self):
        assert run_js("var x = -100; print(x);") == ["-100"]


class TestControlFlow:
    def test_if_else(self):
        assert run_js('if (2 > 3) { print("a"); } else { print("b"); }') == ["b"]

    def test_while(self):
        assert run_js("var i = 0; while (i < 3) { i = i + 1; } print(i);") == ["3"]

    def test_for_inclusive(self):
        assert run_js("var s = 0; for i = 1, 4 { s = s + i; } print(s);") == ["10"]

    def test_for_negative_step(self):
        assert run_js("var s = \"\"; for i = 3, 1, -1 { s = s .. i; } print(s);") == ["321"]

    def test_break_continue(self):
        src = """
        var s = 0;
        for i = 1, 10 { if (i == 3) { continue; } if (i == 6) { break; } s = s + i; }
        print(s);
        """
        assert run_js(src) == ["12"]  # 1+2+4+5

    def test_non_literal_step_rejected(self):
        with pytest.raises(JsCompileError, match="literal 'for' step"):
            JsVM.from_source("var st = 2; for i = 1, 10, st { }")

    def test_zero_step_rejected(self):
        with pytest.raises(JsCompileError, match="non-zero"):
            JsVM.from_source("for i = 1, 10, 0 { }")


class TestLogic:
    def test_value_preserving_and_or(self):
        assert run_js("print(nil or 7); print(false and 1); print(2 and 3);") == [
            "7", "false", "3",
        ]

    def test_short_circuit_no_call(self):
        src = """
        fn boom() { print("BOOM"); return 1; }
        var x = false and boom();
        print(x);
        """
        assert run_js(src) == ["false"]


class TestFunctions:
    def test_recursion(self):
        assert run_js(
            "fn fact(n) { if (n == 0) { return 1; } return n * fact(n - 1); } print(fact(6));"
        ) == ["720"]

    def test_call_depth_limit(self):
        vm = JsVM.from_source("fn f() { return f(); } print(f());")
        with pytest.raises(VmError, match="stack overflow"):
            vm.run()

    def test_step_limit(self):
        vm = JsVM.from_source("while (true) { }", max_steps=500)
        with pytest.raises(VmError, match="step limit"):
            vm.run()

    def test_runtime_call_of_non_function(self):
        vm = JsVM.from_source("fn f() { var g = 1; return g(); } print(f());")
        with pytest.raises(VmError, match="non-function"):
            vm.run()


class TestDataStructures:
    def test_arrays(self):
        assert run_js("var a = [5, 6]; a[0] = 9; print(a[0] + a[1]);") == ["15"]

    def test_maps(self):
        assert run_js('var m = {x: 1}; m["y"] = 2; print(m["x"] + m["y"]);') == ["3"]

    def test_len_compiles_to_length(self):
        module = compile_module_js(parse("var a = [1]; print(len(a));"))
        ops = [op for op, _arg in module.main.decoded]
        assert JsOp.LENGTH in ops


class TestCompiledShape:
    def test_stack_vm_lowers_for_loops(self):
        # No fused FORLOOP opcode: explicit ADD/SETLOCAL increment.
        module = compile_module_js(parse("for i = 1, 3 { }"))
        ops = [op for op, _arg in module.main.decoded]
        assert JsOp.LOOPHEAD in ops
        assert JsOp.IFEQ in ops
        assert JsOp.GOTO in ops
        assert JsOp.ADD in ops

    def test_setlocal_followed_by_pop(self):
        module = compile_module_js(parse("fn f() { var x = 1; }"))
        fn = module.functions["f"]
        ops = [op for op, _arg in fn.decoded]
        at = ops.index(JsOp.SETLOCAL)
        assert ops[at + 1] == JsOp.POP

    def test_main_ends_with_stop(self):
        module = compile_module_js(parse("var x = 1;"))
        assert module.main.decoded[-1][0] == JsOp.STOP

    def test_functions_end_with_return(self):
        module = compile_module_js(parse("fn f() { }"))
        ops = [op for op, _arg in module.functions["f"].decoded]
        assert ops[-1] == JsOp.RETURN

    def test_jump_args_become_instruction_indices(self):
        module = compile_module_js(parse("if (true) { print(1); }"))
        for op, arg in module.main.decoded:
            if op in (JsOp.GOTO, JsOp.IFEQ, JsOp.IFNE, JsOp.AND, JsOp.OR):
                assert 0 <= arg < len(module.main.decoded)

    def test_variable_length_encoding(self):
        module = compile_module_js(parse("var x = 1000;"))
        assert sum(module.main.lengths) == len(module.main.code)
        assert len(set(module.main.lengths)) > 1


class TestTrace:
    def _trace(self, source):
        events = []
        vm = JsVM.from_source(source)
        vm.run(trace=lambda *a: events.append(a))
        return vm, events

    def test_one_event_per_step(self):
        vm, events = self._trace("var s = 0; for i = 1, 10 { s = s + i; } print(s);")
        assert len(events) == vm.steps

    def test_multiple_dispatch_sites_exercised(self):
        _vm, events = self._trace(
            "fn f(x) { return x + 1; } var a = [1]; print(f(a[0]));"
        )
        sites = {e[1] for e in events}
        assert Site.MAIN in sites
        assert Site.END_CASE in sites
        assert Site.FUNCALL in sites

    def test_uncovered_site_reached_by_array_code(self):
        _vm, events = self._trace("var a = [1, 2]; a[0] = 3;")
        assert any(e[1] == Site.UNCOVERED for e in events)

    def test_site_is_previous_ops_exit(self):
        _vm, events = self._trace("print(0);")
        # First event is dispatched from the MAIN loop entry.
        assert events[0][1] == Site.MAIN

    def test_ifeq_taken_flag(self):
        _vm, events = self._trace("if (false) { print(1); }")
        ifeqs = [e for e in events if e[0] == JsOp.IFEQ]
        assert ifeqs and ifeqs[0][2] == 1  # branch taken (condition false)

    def test_callee_kinds(self):
        _vm, events = self._trace("fn f() { return 1; } print(f());")
        kinds = {e[3] for e in events}
        assert CALLEE_SCRIPT in kinds and CALLEE_BUILTIN in kinds
