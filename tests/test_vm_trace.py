"""Unit tests for the trace vocabulary and synthetic address space."""

from repro.vm.trace import (
    AddressSpace,
    CALLEE_BUILTIN,
    CALLEE_NONE,
    CALLEE_RETURN,
    CALLEE_SCRIPT,
    Site,
    TAKEN_FALSE,
    TAKEN_NONE,
    TAKEN_TRUE,
    TraceEvent,
)


class TestConstants:
    def test_sites(self):
        assert list(Site) == [Site.MAIN, Site.FUNCALL, Site.END_CASE, Site.UNCOVERED]
        assert Site.MAIN == 0

    def test_callee_values_distinct(self):
        assert len({CALLEE_NONE, CALLEE_SCRIPT, CALLEE_BUILTIN, CALLEE_RETURN}) == 4

    def test_taken_values(self):
        assert TAKEN_NONE == -1
        assert TAKEN_FALSE == 0
        assert TAKEN_TRUE == 1


class TestTraceEvent:
    def test_defaults(self):
        event = TraceEvent(op=13)
        assert event.site == Site.MAIN
        assert event.taken == TAKEN_NONE
        assert event.callee == CALLEE_NONE
        assert event.daddrs == ()
        assert event.builtin is None


class TestAddressSpace:
    def test_regions_disjoint(self):
        space = AddressSpace()
        frame = space.frame_slot(0, 0)
        const = space.const_slot(0, 0)
        glob = space.global_slot("x")
        stack = space.stack_slot(0)
        heap = space.object_base([])
        regions = [a >> 24 for a in (frame, const, glob, stack, heap)]
        assert len(set(regions)) == 5

    def test_frame_slots_value_sized(self):
        space = AddressSpace()
        assert (
            space.frame_slot(0, 1) - space.frame_slot(0, 0)
            == AddressSpace.VALUE_SIZE
        )

    def test_frames_disjoint_by_depth(self):
        space = AddressSpace()
        assert space.frame_slot(1, 0) - space.frame_slot(0, 0) == 256 * 16

    def test_object_bases_stable_and_distinct(self):
        space = AddressSpace()
        a, b = [], []
        assert space.object_base(a) == space.object_base(a)
        assert space.object_base(a) != space.object_base(b)
        assert abs(space.object_base(b) - space.object_base(a)) == (
            AddressSpace.HEAP_REGION
        )

    def test_elements_local_to_object(self):
        space = AddressSpace()
        array = [0] * 100
        base = space.object_base(array)
        assert space.element(array, 0) == base
        assert space.element(array, 10) == base + 160

    def test_map_slot_deterministic(self):
        space = AddressSpace()
        mapping = {}
        assert space.map_slot(mapping, "key") == space.map_slot(mapping, "key")
        # Different key types accepted.
        space.map_slot(mapping, 42)
        space.map_slot(mapping, 2.5)

    def test_global_slot_deterministic_across_instances(self):
        # Must not depend on randomized str hashing.
        a = AddressSpace().global_slot("print")
        b = AddressSpace().global_slot("print")
        assert a == b
