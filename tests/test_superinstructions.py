"""Tests for the superinstruction strategy and bytecode profiler."""

import pytest

from repro.core import simulate, speedup
from repro.native.model import ModelRunner, get_model
from repro.uarch import Machine, cortex_a5
from repro.vm.lua import LuaVM
from repro.vm.lua.opcodes import Op
from repro.vm.profile import profile_source, profile_workload


class TestModelBuild:
    def test_fused_handlers_built(self):
        model = get_model("lua", "superinst")
        assert len(model.fused) >= 8
        for (first, second), rt in model.fused.items():
            assert rt.kind == "plain"

    def test_only_plain_pairs_fused(self):
        from repro.native.lua_model import HANDLER_SPECS

        model = get_model("lua", "superinst")
        for first, second in model.fused:
            for op in (first, second):
                spec = HANDLER_SPECS[op]
                assert not spec.guest_branch
                assert not spec.has_work_loop
                assert not spec.calls_out

    def test_code_bloat_from_fused_bodies(self):
        baseline = get_model("lua", "baseline").code_size_bytes
        superinst = get_model("lua", "superinst").code_size_bytes
        assert superinst > baseline * 1.1

    def test_non_superinst_models_have_no_fused(self):
        assert get_model("lua", "baseline").fused == {}
        assert get_model("lua", "scd").fused == {}


class TestReplay:
    def _run(self, scheme, source):
        return simulate("custom", vm="lua", scheme=scheme, source=source)

    def test_functional_output_preserved(self):
        source = "var s = 0; for i = 1, 30 { s = s + i * i; } print(s);"
        base = self._run("baseline", source)
        sup = self._run("superinst", source)
        assert sup.output == base.output

    def test_fusion_reduces_instructions(self):
        # mul+add chains hit the (MUL, ADD) and (ADD, ADD) fused pairs.
        source = "var s = 0; var t = 1; for i = 1, 200 { s = s + i * i + t + t; } print(s);"
        base = self._run("baseline", source)
        sup = self._run("superinst", source)
        assert sup.instructions < base.instructions

    def test_fusion_never_loses_events(self):
        """Buffered replay must retire every guest bytecode's handler."""
        source = "var s = 0; for i = 1, 50 { s = s + i; } print(s);"
        model = get_model("lua", "superinst")
        machine = Machine(cortex_a5())
        runner = ModelRunner(model, machine)
        runner.start()
        vm = LuaVM.from_source(source)
        vm.run(trace=runner.on_event)
        runner.finish()
        stats = machine.finalize()
        handler_insts = stats.insts_by_category.get("handler", 0)
        assert handler_insts > 0
        # Dispatches (indirect jumps) <= guest steps: fusions removed some.
        assert stats.indirect_jumps <= vm.steps
        assert stats.indirect_jumps > vm.steps * 0.4

    def test_pending_event_drained_at_finish(self):
        model = get_model("lua", "superinst")
        machine = Machine(cortex_a5())
        runner = ModelRunner(model, machine)
        runner.start()
        vm = LuaVM.from_source("print(1);")
        vm.run(trace=runner.on_event)
        before = machine.finalize().instructions
        runner.finish()
        after = machine.finalize().instructions
        assert after > before  # the buffered last event was replayed

    def test_scd_still_beats_superinstructions(self):
        """The paper's Related Work claim: software fusion trails SCD."""
        source = "var s = 0; for i = 1, 300 { s = s + i * i; } print(s);"
        base = self._run("baseline", source)
        sup = self._run("superinst", source)
        scd = self._run("scd", source)
        assert speedup(base, scd) > speedup(base, sup)


class TestProfiler:
    def test_histograms(self):
        profile = profile_source("var s = 0; for i = 1, 20 { s = s + i; } print(s);")
        assert profile.steps == sum(profile.opcodes.values())
        assert profile.opcodes[Op.FORLOOP] == 21  # 20 iterations + exit
        assert sum(profile.pairs.values()) == profile.steps - 1

    def test_top_opcodes_named(self):
        profile = profile_source("var s = 0; for i = 1, 20 { s = s + i; } print(s);")
        names = dict(profile.top_opcodes(5))
        assert "FORLOOP" in names or "ADD" in names

    def test_site_mix_lua_single_site(self):
        profile = profile_source("print(1);", vm="lua")
        assert profile.site_mix() == {"MAIN": 1.0}

    def test_site_mix_js_multiple_sites(self):
        profile = profile_source(
            "fn f(x) { return x; } print(f(1));", vm="js"
        )
        mix = profile.site_mix()
        assert len(mix) >= 2
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_pair_coverage_bounds(self):
        profile = profile_workload("fibo", vm="lua")
        from repro.native.lua_model import FUSED_PAIRS

        coverage = profile.pair_coverage(FUSED_PAIRS)
        assert 0.0 <= coverage <= 1.0

    def test_profile_workload(self):
        profile = profile_workload("n-sieve", vm="js")
        assert profile.vm == "js"
        assert profile.steps > 1000
