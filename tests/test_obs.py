"""Telemetry subsystem: span tracer, JSONL schema, worker merge, regress.

Golden-schema tests pin the wire format (field names, version tag,
parent/child nesting) so a refactor that silently changes the JSONL
breaks here, not in a consumer.  The worker-merge tests run a real
pooled sweep and validate the merged tree with the same validator CI
uses (``python -m repro.obs``).
"""

from __future__ import annotations

import json
from dataclasses import fields

import pytest

from repro import obs
from repro.harness.parallel import (
    METRICS,
    SimJob,
    ThroughputMetrics,
    run_jobs,
)
from repro.obs.schema import (
    KNOWN_SPANS,
    read_records,
    validate_file,
    validate_records,
)
from repro.obs.regress import render_telemetry_section, telemetry_diff
from repro.obs.trace import SCHEMA_NAME, SCHEMA_VERSION, TRACE_ENV

#: Same tiny grid the fault tests use: cheap, but four real grid points.
GRID = tuple(
    SimJob(w, "lua", scheme, kwargs=(("check_output", False), ("n", 8)))
    for w in ("fibo", "n-sieve")
    for scheme in ("baseline", "scd")
)


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    """Every test starts and ends with tracing off and no exported path."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    obs.close()
    METRICS.reset()
    yield
    obs.close()
    METRICS.reset()


@pytest.fixture
def pool_cpus(monkeypatch):
    """Pretend >= 2 CPUs so run_jobs takes the pooled path on any host."""
    monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 2)


class TestGoldenSchema:
    """Pin the exact JSONL field names and version tag."""

    def test_meta_record_fields(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        obs.close()
        meta = read_records(path)[0]
        assert meta["kind"] == "meta"
        assert meta["schema"] == SCHEMA_NAME == "scd-trace"
        assert meta["v"] == SCHEMA_VERSION == 1
        assert isinstance(meta["pid"], int)
        assert isinstance(meta["t"], float)
        assert isinstance(meta["argv"], list)

    def test_span_start_end_fields(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("sweep", command="list") as sweep:
            sweep.annotate(exit_code=0)
        obs.close()
        _, start, end = read_records(path)
        assert start["kind"] == "span_start"
        assert set(start) == {"v", "kind", "id", "parent", "name", "pid", "t",
                              "attrs"}
        assert start["name"] == "sweep"
        assert start["parent"] is None
        assert start["attrs"] == {"command": "list"}
        assert end["kind"] == "span_end"
        assert set(end) == {"v", "kind", "id", "name", "pid", "t", "dur_s",
                            "attrs"}
        assert end["id"] == start["id"]
        assert end["dur_s"] >= 0
        # annotate() lands on the close record, start attrs on the open.
        assert end["attrs"] == {"exit_code": 0}

    def test_event_fields_and_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("sweep"):
            parent = obs.current_span_id()
            obs.event("quarantine", store="results", reason="corrupt")
        obs.close()
        event = next(r for r in read_records(path) if r["kind"] == "event")
        assert event["name"] == "quarantine"
        assert event["parent"] == parent
        assert event["attrs"] == {"store": "results", "reason": "corrupt"}

    def test_nesting_parent_child(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("sweep"):
            with obs.span("experiment", experiment="figure3"):
                with obs.span("job", vm="lua"):
                    pass
        obs.close()
        log = validate_file(path)
        assert log.ok, log.errors
        (sweep,) = log.by_name("sweep")
        (experiment,) = log.by_name("experiment")
        (job,) = log.by_name("job")
        assert experiment.parent == sweep.id
        assert job.parent == experiment.id
        assert [child.id for child in sweep.children] == [experiment.id]
        assert all(name in KNOWN_SPANS for name in ("sweep", "job"))

    def test_error_lands_on_span_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with pytest.raises(ValueError):
            with obs.span("job"):
                raise ValueError("boom")
        obs.close()
        log = validate_file(path)
        assert log.ok, log.errors
        (job,) = log.by_name("job")
        assert job.attrs["error"] == "ValueError: boom"


class TestTracerLifecycle:
    def test_off_by_default_is_noop(self, tmp_path):
        assert not obs.active()
        with obs.span("sweep") as span:
            span.annotate(anything=1)  # must not raise
        obs.event("ping")
        assert obs.current_span_id() is None
        assert list(tmp_path.iterdir()) == []

    def test_configure_exports_and_close_pops_env(self, tmp_path):
        import os

        path = tmp_path / "t.jsonl"
        obs.configure(path)
        assert os.environ[TRACE_ENV] == str(path)
        assert obs.active()
        obs.close()
        assert TRACE_ENV not in os.environ
        assert not obs.active()
        obs.close()  # idempotent

    def test_reconfigure_truncates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("sweep"):
            pass
        obs.configure(path)
        obs.close()
        records = read_records(path)
        assert [r["kind"] for r in records] == ["meta"]


class TestTeardownSafety:
    """Sink teardown is idempotent and safe at any lifecycle point."""

    def test_close_after_failed_configure(self, tmp_path):
        # Point the sink at a path whose parent does not exist: the
        # open fails, and the tracer must be left fully closed — a
        # later close() cannot touch a stale (possibly recycled) fd.
        with pytest.raises(OSError):
            obs.configure(tmp_path / "missing-dir" / "t.jsonl")
        assert not obs.active()
        obs.close()  # must not raise

    def test_reconfigure_after_failed_configure(self, tmp_path):
        with pytest.raises(OSError):
            obs.configure(tmp_path / "missing-dir" / "t.jsonl")
        path = tmp_path / "t.jsonl"
        obs.configure(path)  # recovers cleanly
        with obs.span("sweep"):
            pass
        obs.close()
        log = validate_file(path)
        assert log.ok, log.errors

    def test_failed_reconfigure_does_not_leave_stale_fd(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with pytest.raises(OSError):
            obs.configure(tmp_path / "missing-dir" / "t.jsonl")
        assert not obs.active()
        obs.close()  # the old fd is already gone; must not re-close it

    def test_double_close(self, tmp_path):
        obs.configure(tmp_path / "t.jsonl")
        obs.close()
        obs.close()

    def test_spans_started_before_close_end_quietly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        span = obs.TRACER.start("sweep")
        obs.close()
        obs.TRACER.end(span)  # dropped, not written to a dead fd
        detached = obs.start_span("service")
        obs.end_span(detached)
        obs.event("ping")
        # Only what happened before close() is on disk.
        kinds = [r["kind"] for r in read_records(path)]
        assert kinds == ["meta", "span_start"]

    def test_end_span_none_is_noop(self):
        obs.end_span(None)  # tracing off: start_span returned None
        assert obs.start_span("service") is None


class TestDetachedSpans:
    """The explicit-parent API used by the async service layer."""

    def test_detached_span_records_with_explicit_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("sweep"):
            service = obs.start_span(
                "service", parent=obs.current_span_id(), queue_depth=8
            )
            # Detached spans never touch the ambient stack: a span
            # opened while one is outstanding still nests under the
            # ambient parent, not under the detached span.
            assert obs.current_span_id() != service.id
            with obs.span("job", vm="lua"):
                pass
            obs.end_span(service, requests=3)
        obs.close()
        log = validate_file(path)
        assert log.ok, log.errors
        (sweep,) = log.by_name("sweep")
        (svc,) = log.by_name("service")
        (job,) = log.by_name("job")
        assert svc.parent == sweep.id
        assert job.parent == sweep.id
        assert svc.attrs["queue_depth"] == 8
        assert svc.attrs["requests"] == 3

    def test_concurrent_detached_spans_interleave(self, tmp_path):
        # The shape asyncio produces: overlapping request lifetimes
        # that a stack could not represent.
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        first = obs.start_span("request", client="a")
        second = obs.start_span("request", client="b")
        obs.end_span(first)
        obs.end_span(second)
        obs.close()
        log = validate_file(path)
        assert log.ok, log.errors
        assert len(log.by_name("request")) == 2


class TestValidator:
    def _meta(self, pid=1000):
        return {"v": 1, "kind": "meta", "schema": "scd-trace", "pid": pid,
                "t": 0.0}

    def _span(self, span_id, pid, parent=None, name="job", closed=True):
        records = [{"v": 1, "kind": "span_start", "id": span_id,
                    "parent": parent, "name": name, "pid": pid, "t": 0.0}]
        if closed:
            records.append({"v": 1, "kind": "span_end", "id": span_id,
                            "name": name, "pid": pid, "t": 1.0, "dur_s": 1.0})
        return records

    def test_empty_trace_is_error(self):
        assert not validate_records([]).ok

    def test_missing_meta_is_error(self):
        log = validate_records(self._span("a-1", 1000))
        assert any("must be meta" in e for e in log.errors)

    def test_version_mismatch_is_error(self):
        records = [self._meta(), {"v": 99, "kind": "event", "parent": None,
                                  "name": "x", "pid": 1000, "t": 0.0}]
        log = validate_records(records)
        assert any("version" in e for e in log.errors)

    def test_unclosed_span_is_error(self):
        records = [self._meta()] + self._span("a-1", 1000, closed=False)
        log = validate_records(records)
        assert any("unclosed span a-1" in e for e in log.errors)

    def test_dangling_parent_is_error(self):
        records = [self._meta()] + self._span("a-1", 1000, parent="ghost")
        log = validate_records(records)
        assert any("dangling parent ghost" in e for e in log.errors)

    def test_orphaned_worker_span_is_error(self):
        # A worker-pid span with no ancestry into the root process: the
        # merge never happened (e.g. adopt_worker was skipped).
        records = [self._meta(pid=1000)] + self._span("b-1", 2000)
        log = validate_records(records)
        assert any("orphaned worker span b-1" in e for e in log.errors)

    def test_adopted_worker_span_is_not_orphaned(self):
        records = (
            [self._meta(pid=1000)]
            + self._span("a-1", 1000, name="sweep")
            + self._span("b-1", 2000, parent="a-1")
        )
        log = validate_records(records)
        assert log.ok, log.errors
        assert log.worker_pids() == {2000}

    def test_cli_validator_exit_codes(self, tmp_path, capsys):
        from repro.obs.__main__ import main as validate_main

        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("sweep"):
            pass
        obs.close()
        assert validate_main([str(path)]) == 0
        assert validate_main([str(path), "--expect-workers", "1"]) == 1
        assert "worker" in capsys.readouterr().err


@pytest.mark.usefixtures("pool_cpus")
class TestWorkerMerge:
    def test_parallel_sweep_merges_worker_spans(self, tmp_path, tmp_cache):
        path = tmp_path / "sweep.jsonl"
        obs.configure(path)
        with obs.span("sweep", command="test"):
            results = run_jobs(GRID, workers=2, cache=tmp_cache)
        obs.close()
        assert len(results) == len(GRID)

        log = validate_file(path)
        assert log.ok, log.errors
        jobs = log.by_name("job")
        assert len(jobs) == len(GRID)
        # The pool really forked: job spans come from worker pids, and
        # every one of them is rooted in the parent's sweep span.
        assert log.worker_pids(), "expected spans from worker processes"
        for job in jobs:
            assert job.attrs["cached"] is False
            assert job.attrs["events"] > 0
            assert "pipeline" in job.attrs["uarch"]
            assert "btb" in job.attrs["uarch"]
            # Phase children account for (most of) the job wall time and
            # never exceed it.
            child_time = sum(c.dur_s for c in job.children)
            assert 0 < child_time <= job.dur_s * 1.05 + 0.01

    def test_cached_rerun_marks_job_spans(self, tmp_path, tmp_cache):
        run_jobs(GRID, workers=1, cache=tmp_cache)  # populate
        path = tmp_path / "rerun.jsonl"
        obs.configure(path)
        with obs.span("sweep"):
            run_jobs(GRID, workers=2, cache=tmp_cache)
        obs.close()
        log = validate_file(path)
        assert log.ok, log.errors
        assert all(job.attrs["cached"] for job in log.by_name("job"))


class TestMetricsReset:
    def test_reset_clears_every_field(self):
        metrics = ThroughputMetrics()
        for index, spec in enumerate(fields(metrics), start=1):
            setattr(metrics, spec.name, index)  # every counter non-default
        metrics.reset()
        for spec in fields(metrics):
            assert getattr(metrics, spec.name) == spec.default, spec.name

    def test_as_dict_covers_every_field(self):
        metrics = ThroughputMetrics(retries=3, quarantined=1)
        exported = metrics.as_dict()
        assert set(exported) == {spec.name for spec in fields(metrics)}
        assert exported["retries"] == 3
        assert exported["quarantined"] == 1

    def test_fault_counters_absent_after_reset_summary(self):
        metrics = ThroughputMetrics(
            retries=2, timeouts=1, worker_deaths=1, quarantined=4
        )
        metrics.reset()
        summary = metrics.summary(0.5)
        for label in ("retried", "timed out", "worker deaths", "quarantined"):
            assert label not in summary


class TestRegress:
    BENCH = {
        "guard": {"min_events_per_s": 3000},
        "hot_path": {"events_per_s": 100_000},
        "trace_replay": {"replay_events_per_s": 500_000},
    }

    def _metrics(self, **kwargs):
        metrics = ThroughputMetrics()
        for name, value in kwargs.items():
            setattr(metrics, name, value)
        return metrics

    def test_ok_verdict_at_or_above_floor(self):
        rows = telemetry_diff(
            self._metrics(events=30_000, sim_wall_s=1.0), self.BENCH
        )
        assert rows[0]["metric"] == "simulation events/s"
        assert rows[0]["verdict"] == "ok"

    def test_regressed_below_guard_floor(self):
        rows = telemetry_diff(
            self._metrics(events=100, sim_wall_s=1.0), self.BENCH
        )
        assert rows[0]["verdict"] == "REGRESSED"

    def test_idle_run_is_na(self):
        rows = telemetry_diff(self._metrics(), self.BENCH)
        assert [row["verdict"] for row in rows] == ["n/a"] * 5

    def test_kernel_and_batch_floor_rows(self):
        """The kernel/batch rows verdict on the *recorded* baseline
        speedup vs its guard floor (portable), only when this run did
        comparable work."""
        bench = {
            "guard": {"min_kernel_speedup": 1.3, "min_batch_speedup": 1.25},
            "kernel_replay": {
                "speedup_kernel_over_interpreted": 1.9,
                "replay_events_per_s_kernel_on": 400_000,
            },
            "batch_replay": {
                "speedup_batch_over_kernel": 1.1,
                "replay_events_per_s_batch_on": 600_000,
            },
        }
        metrics = self._metrics(
            kernel_events=10_000, batch_events=8_000, replay_wall_s=1.0
        )
        rows = {row["metric"]: row for row in telemetry_diff(metrics, bench)}
        kernel = rows["kernel replay events/s"]
        assert kernel["verdict"] == "ok"
        assert kernel["reference"] == 400_000
        batch = rows["batch replay events/s"]
        assert batch["verdict"] == "REGRESSED"  # 1.1 < 1.25 floor
        assert batch["reference"] == 600_000
        # A run with no kernel/batch work reads n/a on both rows.
        idle_rows = {
            row["metric"]: row for row in telemetry_diff(self._metrics(), bench)
        }
        assert idle_rows["kernel replay events/s"]["verdict"] == "n/a"
        assert idle_rows["batch replay events/s"]["verdict"] == "n/a"

    def test_render_without_baseline(self, monkeypatch):
        monkeypatch.setattr(
            "repro.obs.regress.find_bench", lambda path=None: None
        )
        text = render_telemetry_section(self._metrics(), wall_s=1.0)
        assert "no BENCH_dispatch.json baseline" in text
        assert "n/a" in text

    def test_render_with_baseline(self, tmp_path, monkeypatch):
        bench_path = tmp_path / "BENCH_dispatch.json"
        bench_path.write_text(json.dumps(self.BENCH))
        text = render_telemetry_section(
            self._metrics(sims=2, events=30_000, sim_wall_s=1.0),
            bench_path=bench_path,
        )
        assert "2 simulation(s)" in text
        assert "ok" in text
        assert "30,000" in text
