"""Fuzzing the framed trace wire format (repro.vm.capture).

The TraceStore contract: a corrupt, truncated or stale trace file must
read back as a *store miss* — never as an exception escaping the store,
and never as wrong data.  These tests hammer that contract with random
payloads, single-bit corruption and truncation at every byte boundary.
"""

from __future__ import annotations

import random

import pytest

from repro.harness.cache import TraceStore
from repro.vm.capture import (
    RecordedTrace,
    TraceFormatError,
    TraceRecorder,
    trace_key,
)

_SITES = (0, 1, 2, 3)
_TAKENS = (-1, 0, 1)
_CALLEES = (0, 1, 2, 3)
_BUILTINS = (None, "print", "len", "substr", "tostring")


def _random_trace(seed: int, n_events: int = 200) -> RecordedTrace:
    """A RecordedTrace over random (but schema-valid) events."""
    rng = random.Random(seed)
    recorder = TraceRecorder()
    for _ in range(n_events):
        daddrs = tuple(
            rng.randrange(0, 1 << 32) for _ in range(rng.randrange(0, 4))
        )
        cost = (
            (rng.randrange(0, 200), rng.randrange(0, 50), rng.randrange(0, 50))
            if rng.random() < 0.2
            else None
        )
        recorder.hook(
            rng.randrange(0, 256),
            rng.choice(_SITES),
            rng.choice(_TAKENS),
            rng.choice(_CALLEES),
            daddrs,
            rng.choice(_BUILTINS),
            cost,
        )
    output = [f"line-{rng.randrange(1000)}" for _ in range(rng.randrange(0, 5))]
    return recorder.seal(output, guest_steps=n_events)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_payload_round_trips_exactly(self, seed):
        trace = _random_trace(seed)
        clone = RecordedTrace.from_bytes(trace.to_bytes(key=f"k{seed}"))
        assert list(clone.iter_events()) == list(trace.iter_events())
        assert clone.output == trace.output
        assert clone.guest_steps == trace.guest_steps
        assert clone.key == f"k{seed}"

    def test_empty_trace_round_trips(self):
        trace = TraceRecorder().seal([], guest_steps=0)
        clone = RecordedTrace.from_bytes(trace.to_bytes(key="empty"))
        assert clone.n_events == 0
        assert list(clone.iter_events()) == []


class TestCorruption:
    def test_truncation_at_every_boundary_raises_format_error(self):
        data = _random_trace(1, n_events=40).to_bytes(key="t")
        for length in range(len(data)):
            with pytest.raises(TraceFormatError):
                RecordedTrace.from_bytes(data[:length])

    def test_single_bit_flips_never_escape_or_lie(self):
        trace = _random_trace(2, n_events=40)
        data = trace.to_bytes(key="b")
        reference = list(trace.iter_events())
        rng = random.Random(99)
        positions = sorted(rng.sample(range(len(data)), min(len(data), 120)))
        for position in positions:
            for bit in (0, 3, 7):
                corrupt = bytearray(data)
                corrupt[position] ^= 1 << bit
                try:
                    clone = RecordedTrace.from_bytes(bytes(corrupt))
                except TraceFormatError:
                    continue  # rejected: the desired outcome
                # The only acceptable alternative is a byte-identical read
                # (impossible here since we always flip a real bit — so a
                # successful parse is a CRC collision, which zlib.crc32
                # cannot produce for a single-bit flip).
                assert list(clone.iter_events()) == reference, (
                    f"bit flip at byte {position} silently changed the trace"
                )

    def test_random_garbage_raises_format_error(self):
        rng = random.Random(3)
        for size in (0, 1, 11, 12, 13, 100, 5000):
            blob = bytes(rng.randrange(256) for _ in range(size))
            with pytest.raises(TraceFormatError):
                RecordedTrace.from_bytes(blob)

    def test_wrong_version_rejected(self):
        data = bytearray(_random_trace(4).to_bytes(key="v"))
        data[6] ^= 0xFF  # version field of the <6sHI frame header
        with pytest.raises(TraceFormatError):
            RecordedTrace.from_bytes(bytes(data))


class TestStoreMissSemantics:
    """Corruption on disk surfaces as a miss, never an exception."""

    def _store_with_entry(self, tmp_path, seed=5):
        store = TraceStore(root=tmp_path)
        key = trace_key("lua", f"print({seed});", 1000)
        store.put(key, _random_trace(seed))
        return store, key

    def test_intact_entry_hits(self, tmp_path):
        store, key = self._store_with_entry(tmp_path)
        fresh = TraceStore(root=tmp_path)  # no memo
        assert fresh.get(key) is not None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store, key = self._store_with_entry(tmp_path)
        path = store.entry_path(key)
        data = path.read_bytes()
        for length in (0, 5, 12, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:length])
            assert TraceStore(root=tmp_path).get(key) is None

    def test_bit_flipped_entry_is_a_miss(self, tmp_path):
        store, key = self._store_with_entry(tmp_path)
        path = store.entry_path(key)
        data = path.read_bytes()
        rng = random.Random(7)
        for position in rng.sample(range(len(data)), 32):
            corrupt = bytearray(data)
            corrupt[position] ^= 0x10
            path.write_bytes(bytes(corrupt))
            assert TraceStore(root=tmp_path).get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """An entry whose embedded key disagrees with the lookup key
        (hash collision / moved file) must miss rather than replay the
        wrong program's trace."""
        store, key = self._store_with_entry(tmp_path)
        other_key = trace_key("lua", "print(0);", 1000)
        payload = _random_trace(6).to_bytes(key=key)
        other_path = store.entry_path(other_key)
        other_path.parent.mkdir(parents=True, exist_ok=True)
        other_path.write_bytes(payload)
        assert TraceStore(root=tmp_path).get(other_key) is None

    def test_missing_file_is_a_miss(self, tmp_path):
        store = TraceStore(root=tmp_path)
        assert store.get(trace_key("js", "print(1);", 10)) is None
