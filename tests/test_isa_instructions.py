"""Unit tests for the host ISA instruction definitions."""

import pytest

from repro.isa.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Kind,
    is_control_flow,
    make_nops,
    mnemonic_kind,
)


class TestMnemonicKind:
    def test_alu(self):
        assert mnemonic_kind("add") is Kind.ALU
        assert mnemonic_kind("s4addq") is Kind.ALU
        assert mnemonic_kind("fmul") is Kind.ALU

    def test_memory(self):
        assert mnemonic_kind("ldq") is Kind.LOAD
        assert mnemonic_kind("ldbu") is Kind.LOAD
        assert mnemonic_kind("stq") is Kind.STORE

    def test_control_flow(self):
        assert mnemonic_kind("beq") is Kind.BRANCH
        assert mnemonic_kind("br") is Kind.JUMP
        assert mnemonic_kind("jmp") is Kind.JUMP_IND
        assert mnemonic_kind("call") is Kind.CALL
        assert mnemonic_kind("callr") is Kind.CALL_IND
        assert mnemonic_kind("ret") is Kind.RET

    def test_scd_extension(self):
        assert mnemonic_kind("setmask") is Kind.SETMASK
        assert mnemonic_kind("bop") is Kind.BOP
        assert mnemonic_kind("jru") is Kind.JRU
        assert mnemonic_kind("jte.flush") is Kind.JTE_FLUSH

    def test_op_suffix_stripped(self):
        assert mnemonic_kind("ldl.op") is Kind.LOAD
        assert mnemonic_kind("ldbu.op") is Kind.LOAD

    def test_jte_flush_not_op_suffixed(self):
        # 'jte.flush' ends in neither '.op' handling path.
        assert mnemonic_kind("jte.flush") is Kind.JTE_FLUSH

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            mnemonic_kind("frobnicate")


class TestIsControlFlow:
    @pytest.mark.parametrize(
        "kind",
        [Kind.BRANCH, Kind.JUMP, Kind.JUMP_IND, Kind.CALL, Kind.CALL_IND,
         Kind.RET, Kind.BOP, Kind.JRU],
    )
    def test_terminators(self, kind):
        assert is_control_flow(kind)

    @pytest.mark.parametrize(
        "kind", [Kind.ALU, Kind.LOAD, Kind.STORE, Kind.NOP, Kind.SETMASK,
                 Kind.JTE_FLUSH]
    )
    def test_non_terminators(self, kind):
        assert not is_control_flow(kind)


class TestInstruction:
    def test_str_plain(self):
        inst = Instruction("add", Kind.ALU, "r1, r2, r3")
        assert str(inst) == "add r1, r2, r3"

    def test_str_op_suffix(self):
        inst = Instruction("ldl", Kind.LOAD, "r9, 0(r5)", op_suffix=True)
        assert str(inst).startswith("ldl.op")

    def test_str_with_target(self):
        inst = Instruction("beq", Kind.BRANCH, "r1, Out", target_label="Out")
        assert "-> Out" in str(inst)

    def test_default_fields(self):
        inst = Instruction("nop", Kind.NOP)
        assert inst.pc == -1
        assert inst.target is None
        assert not inst.op_suffix


def test_make_nops():
    nops = make_nops(5)
    assert len(nops) == 5
    assert all(n.kind is Kind.NOP for n in nops)
    # Each NOP is a distinct object (mutation safety).
    assert nops[0] is not nops[1]


def test_instruction_size():
    assert INSTRUCTION_SIZE == 4
