"""Unit tests for Lua opcode encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.vm.lua.opcodes import (
    ABX_OPCODES,
    ASBX_OPCODES,
    NUM_OPCODES,
    OPCODE_MASK,
    Op,
    RK_CONST_BIT,
    SBX_BIAS,
    decode,
    disassemble,
    encode_abc,
    encode_abx,
    encode_asbx,
)


def test_exactly_47_opcodes():
    # Section V: "Lua has 47 distinct bytecodes".
    assert NUM_OPCODES == 47
    assert len(Op) == 47


def test_opcode_numbering_matches_lua53():
    assert Op.MOVE == 0
    assert Op.ADD == 13
    assert Op.JMP == 30
    assert Op.CALL == 36
    assert Op.RETURN == 38
    assert Op.FORLOOP == 39
    assert Op.EXTRAARG == 46


def test_mask_is_six_bits():
    # The paper's setmask example for Lua: 0x0000003F.
    assert OPCODE_MASK == 0x3F
    assert NUM_OPCODES <= OPCODE_MASK + 1


class TestEncodeDecode:
    def test_abc_roundtrip(self):
        word = encode_abc(Op.ADD, 3, 0x1F2, 0x045)
        op, a, b, c, _bx, _sbx = decode(word)
        assert (op, a, b, c) == (Op.ADD, 3, 0x1F2, 0x045)

    def test_opcode_in_low_bits(self):
        word = encode_abc(Op.GETTABLE, 0xFF, 0x1FF, 0x1FF)
        assert word & OPCODE_MASK == Op.GETTABLE

    def test_abx_roundtrip(self):
        word = encode_abx(Op.LOADK, 7, 12345)
        op, a, _b, _c, bx, _sbx = decode(word)
        assert (op, a, bx) == (Op.LOADK, 7, 12345)

    def test_asbx_roundtrip_negative(self):
        word = encode_asbx(Op.JMP, 0, -42)
        *_rest, sbx = decode(word)
        assert sbx == -42

    def test_asbx_roundtrip_positive(self):
        word = encode_asbx(Op.FORLOOP, 4, 100)
        *_rest, sbx = decode(word)
        assert sbx == 100

    def test_sbx_extremes(self):
        assert decode(encode_asbx(Op.JMP, 0, -SBX_BIAS))[-1] == -SBX_BIAS
        assert decode(encode_asbx(Op.JMP, 0, SBX_BIAS + 1))[-1] == SBX_BIAS + 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_abc(Op.ADD, 256, 0, 0)
        with pytest.raises(ValueError):
            encode_abc(Op.ADD, 0, 512, 0)
        with pytest.raises(ValueError):
            encode_abx(Op.LOADK, 0, 1 << 18)
        with pytest.raises(ValueError):
            encode_asbx(Op.JMP, 0, SBX_BIAS + 2)

    @given(
        op=st.sampled_from(list(Op)),
        a=st.integers(0, 0xFF),
        b=st.integers(0, 0x1FF),
        c=st.integers(0, 0x1FF),
    )
    def test_abc_roundtrip_property(self, op, a, b, c):
        word = encode_abc(op, a, b, c)
        assert 0 <= word < 2**32
        got_op, got_a, got_b, got_c, _bx, _sbx = decode(word)
        assert (got_op, got_a, got_b, got_c) == (op, a, b, c)

    @given(op=st.sampled_from(sorted(ASBX_OPCODES)), a=st.integers(0, 0xFF),
           sbx=st.integers(-SBX_BIAS, SBX_BIAS + 1))
    def test_asbx_roundtrip_property(self, op, a, sbx):
        word = encode_asbx(op, a, sbx)
        got = decode(word)
        assert got[0] == op and got[1] == a and got[5] == sbx


class TestDisassemble:
    def test_abc_form(self):
        text = disassemble(encode_abc(Op.ADD, 1, 2, RK_CONST_BIT | 3))
        assert text == "ADD R1 R2 K3"

    def test_abx_form(self):
        assert disassemble(encode_abx(Op.LOADK, 0, 5)) == "LOADK R0 5"

    def test_asbx_form(self):
        assert disassemble(encode_asbx(Op.JMP, 0, -3)) == "JMP R0 -3"

    def test_bad_opcode(self):
        assert "bad opcode" in disassemble(63)


def test_format_sets_disjoint():
    assert not (ABX_OPCODES & ASBX_OPCODES)
