"""Tests for chunk-compiled batch (superblock) replay.

The batch layer's contract mirrors the kernels': byte-identity.  For
every scheme, VM, context-switch setting and memo mode, a replay with
superblock batching enabled must produce exactly the SimResult of the
per-event kernel path (and of the interpreted path below that).  The
segmentation contract is that only genuinely periodic steady-state runs
compile — single-occurrence sequences and cold prefixes stay on the
per-event ladder — and that segment boundaries landing on context
switches or memo chunk edges never change a counter.
"""

import os
from array import array

import pytest

from repro.core.simulation import SCHEMES, simulate
from repro.harness import faults
from repro.harness.cache import MemoStore, TraceStore
from repro.native.batch import (
    MIN_REPS,
    MIN_RUN_EVENTS,
    batch_enabled,
    find_periodic_runs,
    set_batch_enabled,
)
from repro.vm.capture import MEMO_CHUNK_EVENTS

ALL_SCHEMES = SCHEMES + ("ttc", "cascaded", "ittage", "superinst")

#: Long scalar loop: >28k events, so the steady-state body repeats far
#: past MIN_COMPILE_EVENTS and superblocks must engage.
LOOP_SRC = 'var i = 0;\nwhile (i < 5000) { i = i + 1; }\nprint("done " .. i);\n'

#: Mixed control flow: calls, branches and builtins exercise the
#: per-event fallback at superblock boundaries.
CALL_SRC = (
    'fn f(n) { if (n < 2) { return n; } return f(n - 1) + f(n - 2); }\n'
    'print("fib " .. f(12));\n'
)

#: No loops at all: every kernel-key sequence occurs once, so the
#: segmenter must find nothing to compile.
STRAIGHT_SRC = 'var a = 1;\nvar b = a + 2;\nprint("sum " .. (a + b));\n'


@pytest.fixture(autouse=True)
def _reset_batch_mode():
    set_batch_enabled(None)
    yield
    set_batch_enabled(None)
    os.environ.pop("SCD_REPRO_BATCH", None)


def _sig(result):
    return (
        result.cycles,
        result.instructions,
        result.cpi,
        result.branch_mpki,
        result.icache_mpki,
        result.dcache_mpki,
        result.bop_hits,
        result.bop_misses,
        result.jte_inserts,
        tuple(sorted(result.mispredicts_by_category.items())),
        tuple(sorted(result.insts_by_category.items())),
        tuple(sorted(result.cycle_breakdown.items())),
        result.output,
    )


def _replay(tmp_path, source, scheme="scd", record=False, **kwargs):
    store = TraceStore(root=tmp_path)
    if record:
        simulate("prog", vm="lua", scheme="baseline", source=source,
                 trace_store=store, trace_mode="record", use_kernel=False)
    return simulate("prog", vm="lua", scheme=scheme, source=source,
                    trace_store=store, trace_mode="replay", **kwargs)


class TestBatchIdentity:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("memo", (True, False))
    def test_replay_identity(self, tmp_path, scheme, memo):
        """Batch-on replay equals batch-off (kernels on) and kernel-off."""
        _replay(tmp_path, LOOP_SRC, scheme="baseline", record=True)
        batch_on = _replay(tmp_path, LOOP_SRC, scheme=scheme,
                           replay_memo=memo, use_batch=True)
        batch_off = _replay(tmp_path, LOOP_SRC, scheme=scheme,
                            replay_memo=memo, use_batch=False)
        kernel_off = _replay(tmp_path, LOOP_SRC, scheme=scheme,
                             replay_memo=memo, use_kernel=False)
        assert _sig(batch_on) == _sig(batch_off)
        assert _sig(batch_on) == _sig(kernel_off)

    @pytest.mark.parametrize("vm", ("lua", "js"))
    def test_live_identity(self, vm):
        """Live simulation (kernels bound, no trace) is unaffected too."""
        on = simulate("prog", vm=vm, scheme="scd", source=CALL_SRC,
                      use_batch=True)
        off = simulate("prog", vm=vm, scheme="scd", source=CALL_SRC,
                       use_batch=False)
        assert _sig(on) == _sig(off)

    def test_superblocks_engage_on_steady_loop(self, tmp_path):
        """The hot loop actually flows through compiled superblocks."""
        _replay(tmp_path, LOOP_SRC, scheme="baseline", record=True)
        meta: dict = {}
        _replay(tmp_path, LOOP_SRC, use_batch=True, metrics=meta)
        assert meta["superblocks"] > 0
        assert meta["batch_events"] > 0
        # Steady state dominates: most replayed events ride superblocks.
        assert meta["batch_events"] > meta["events"] // 2

    def test_use_batch_false_disables(self, tmp_path):
        _replay(tmp_path, LOOP_SRC, scheme="baseline", record=True)
        meta: dict = {}
        _replay(tmp_path, LOOP_SRC, use_batch=False, metrics=meta)
        assert meta["superblocks"] == 0
        assert meta["batch_events"] == 0
        assert meta["kernel_events"] > 0


class TestSuperblockBoundaries:
    def test_context_switch_straddles_segment(self, tmp_path):
        """A context-switch interval coprime to the loop period lands
        flushes mid-superblock; the runtime must fall back per-event
        around each switch with identical counters."""
        store = TraceStore(root=tmp_path)
        simulate("prog", vm="lua", scheme="baseline", source=LOOP_SRC,
                 trace_store=store, trace_mode="record", use_kernel=False,
                 context_switch_interval=997)
        results = [
            simulate("prog", vm="lua", scheme="scd", source=LOOP_SRC,
                     trace_store=store, trace_mode="replay",
                     context_switch_interval=997, use_batch=enabled)
            for enabled in (True, False)
        ]
        assert _sig(results[0]) == _sig(results[1])

    @pytest.mark.parametrize("memo", (True, False))
    def test_memo_chunk_boundary_bisects_superblock(self, tmp_path, memo):
        """LOOP_SRC's steady run spans many MEMO_CHUNK_EVENTS edges, so
        chunk boundaries bisect superblocks; memo bookkeeping (chunk
        digests, skip decisions) must not drift from the batch-off run."""
        _replay(tmp_path, LOOP_SRC, scheme="baseline", record=True)
        meta: dict = {}
        batch_on = _replay(tmp_path, LOOP_SRC, replay_memo=memo,
                           use_batch=True, metrics=meta)
        batch_off = _replay(tmp_path, LOOP_SRC, replay_memo=memo,
                            use_batch=False)
        assert _sig(batch_on) == _sig(batch_off)
        # The premise: the batched span really is longer than one chunk.
        assert meta["batch_events"] > MEMO_CHUNK_EVENTS

    def test_memo_skip_and_batch_compose(self, tmp_path):
        """Second memo replay skips warmed chunks; what remains still
        batches (or falls back) to identical results."""
        store = TraceStore(root=tmp_path)
        memos = MemoStore(root=tmp_path)
        simulate("prog", vm="lua", scheme="scd", source=LOOP_SRC,
                 trace_store=store, trace_mode="auto")
        first = simulate("prog", vm="lua", scheme="scd", source=LOOP_SRC,
                         trace_store=store, trace_mode="replay",
                         memo_store=memos, use_batch=True)
        meta: dict = {}
        second = simulate("prog", vm="lua", scheme="scd", source=LOOP_SRC,
                          trace_store=store, trace_mode="replay",
                          memo_store=MemoStore(root=tmp_path),
                          use_batch=True, metrics=meta)
        assert meta["memo_loaded"] > 0
        assert _sig(first) == _sig(second)

    def test_straight_line_never_compiles(self, tmp_path):
        """Single-occurrence sequences must not produce superblocks."""
        _replay(tmp_path, STRAIGHT_SRC, scheme="baseline", record=True)
        meta: dict = {}
        result = _replay(tmp_path, STRAIGHT_SRC, use_batch=True, metrics=meta)
        assert meta["superblocks"] == 0
        assert meta["batch_events"] == 0
        reference = _replay(tmp_path, STRAIGHT_SRC, use_kernel=False)
        assert _sig(result) == _sig(reference)


class TestFindPeriodicRuns:
    @staticmethod
    def _cols(keys):
        ops = array("H", [k[0] for k in keys])
        sites = array("B", [k[1] for k in keys])
        return ops, sites

    def test_detects_steady_loop(self):
        body = [(1, 0), (2, 0), (3, 1)]
        reps = 50
        ops, sites = self._cols(body * reps)
        runs = find_periodic_runs(ops, sites, len(ops))
        # The first repetition is the cold prefix: periodicity is only
        # visible from the second occurrence of the leading key onward.
        assert runs == [(len(body), len(body), reps - 1)]

    def test_single_occurrence_rejected(self):
        """A sequence that never repeats (or repeats fewer than MIN_REPS
        times) yields no runs."""
        body = [(1, 0), (2, 0), (3, 1), (4, 0)]
        ops, sites = self._cols(body * (MIN_REPS - 1))
        assert find_periodic_runs(ops, sites, len(ops)) == []
        distinct = [(i, 0) for i in range(MIN_RUN_EVENTS * 2)]
        ops, sites = self._cols(distinct)
        assert find_periodic_runs(ops, sites, len(ops)) == []

    def test_partial_trailing_rep_left_to_per_event_path(self):
        body = [(1, 0), (2, 1), (3, 0), (4, 1)]
        reps = 20
        ops, sites = self._cols(body * reps + body[:2])
        runs = find_periodic_runs(ops, sites, len(ops))
        # Cold first rep excluded, trailing half-rep excluded: 19 full
        # repetitions starting at the second body occurrence.
        assert runs == [(len(body), len(body), reps - 1)]

    def test_cold_prefix_excluded(self):
        prefix = [(9, 0), (8, 1), (7, 0), (6, 1), (5, 0)]
        body = [(1, 0), (2, 0), (3, 1)]
        reps = 40
        ops, sites = self._cols(prefix + body * reps)
        runs = find_periodic_runs(ops, sites, len(ops))
        assert len(runs) == 1
        start, period, got_reps = runs[0]
        assert start >= len(prefix) - len(body)  # phase may rotate into it
        assert period == len(body)
        assert period * got_reps >= MIN_RUN_EVENTS

    def test_site_column_breaks_false_periodicity(self):
        """An op-periodic stream with aperiodic dispatch sites is not a
        run: (op, site) is the kernel key, so both columns must verify.
        Irregular site marks spaced closer than MIN_RUN_EVENTS leave no
        qualifying window."""
        keys = [((i % 3) + 1, 0) for i in range(120)]
        for mark in range(7, 120, 13):
            keys[mark] = (keys[mark][0], 1)
        ops, sites = self._cols(keys)
        assert find_periodic_runs(ops, sites, len(ops)) == []


class TestBatchMode:
    def test_explicit_overrides_all(self):
        os.environ["SCD_REPRO_BATCH"] = "1"
        set_batch_enabled(True)
        assert batch_enabled(False) is False

    def test_cli_default_overrides_env(self):
        os.environ["SCD_REPRO_BATCH"] = "1"
        set_batch_enabled(False)
        assert batch_enabled(None) is False

    def test_env_opt_out(self):
        os.environ["SCD_REPRO_BATCH"] = "0"
        assert batch_enabled(None) is False

    def test_default_on(self):
        assert batch_enabled(None) is True


class TestBatchUnderFaults:
    @pytest.fixture(autouse=True)
    def _isolate_fault_state(self, monkeypatch):
        monkeypatch.delenv("SCD_FAULT", raising=False)
        monkeypatch.delenv("SCD_FAULT_DIR", raising=False)
        faults.reset_plan_cache()
        yield
        faults.reset_plan_cache()

    def test_env_opt_out_identity_under_corrupt_shard(
        self, tmp_path, monkeypatch
    ):
        """SCD_REPRO_BATCH=0 with corrupt-shard injection: the corrupted
        trace shard quarantines, the sweep re-records, and the batch-off
        results match a clean batch-on run byte for byte."""
        from repro.harness.cache import ResultCache
        from repro.harness.parallel import run_jobs, SimJob

        grid = tuple(
            SimJob(w, "lua", scheme, kwargs=(("check_output", False), ("n", 8)))
            for w in ("fibo", "n-sieve")
            for scheme in ("baseline", "scd")
        )
        monkeypatch.setenv("SCD_REPRO_RETRY_BACKOFF", "0")

        clean = run_jobs(
            grid, workers=1, cache=ResultCache("batch-on", root=tmp_path / "a")
        )

        monkeypatch.setenv("SCD_REPRO_BATCH", "0")
        monkeypatch.setenv("SCD_FAULT", "corrupt-shard:0")
        monkeypatch.setenv("SCD_FAULT_DIR", str(tmp_path / "fault-state"))
        faults.reset_plan_cache()
        faulted = run_jobs(
            grid, workers=1, cache=ResultCache("batch-off", root=tmp_path / "b")
        )
        monkeypatch.delenv("SCD_FAULT")
        faults.reset_plan_cache()
        # Same root, fresh cache name: replays through the surviving +
        # re-recorded traces, still with batch disabled.
        replayed = run_jobs(
            grid, workers=1,
            cache=ResultCache("batch-off2", root=tmp_path / "b"),
        )

        def canon(results):
            return [r.to_dict() for r in results]

        assert canon(faulted) == canon(clean)
        assert canon(replayed) == canon(clean)
