"""Unit tests for handler/stub code generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Kind, assemble
from repro.native.specs import (
    WORK_LOOP_INSTS,
    HandlerSpec,
    generate_handler_asm,
    generate_stub_asm,
    work_loop_iterations,
)


def executed_hot_path_insts(program, name):
    """Count instructions on the hot path: follow the junction chain."""
    total = 0
    block = program.block(name)
    while True:
        total += block.n_insts
        term = block.term
        if (
            term is not None
            and term.mnemonic == "bne"
            and term.target_label
            and term.target_label.startswith(f"{name}_h")
        ):
            block = program.block(term.target_label)
            continue
        return total, block


class TestPlainHandler:
    def test_assembles(self):
        spec = HandlerSpec(alu=20, loads=5, stores=3)
        text = generate_handler_asm("H_X", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        assert program.has_block("H_X")

    def test_executed_count_matches_spec(self):
        """Junction branches must not inflate the executed instruction count."""
        spec = HandlerSpec(alu=22, loads=5, stores=3)
        text = generate_handler_asm("H_X", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        total, final = executed_hot_path_insts(program, "H_X")
        # +1 for the tail jump on the final block.
        assert total == spec.body_insts + 1
        assert final.term.kind is Kind.JUMP

    def test_cold_regions_not_on_hot_path(self):
        spec = HandlerSpec(alu=30, loads=6, stores=4)
        text = generate_handler_asm("H_X", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        total, _final = executed_hot_path_insts(program, "H_X")
        # The program contains far more instructions than the hot path.
        assert len(program) > total + 10

    @given(
        alu=st.integers(4, 80),
        loads=st.integers(0, 20),
        stores=st.integers(0, 12),
        chunk=st.integers(3, 16),
        cold=st.integers(4, 48),
    )
    @settings(max_examples=40, deadline=None)
    def test_count_preservation_property(self, alu, loads, stores, chunk, cold):
        spec = HandlerSpec(alu=alu, loads=loads, stores=stores)
        text = generate_handler_asm(
            "H_P", spec, "br {loop}", "Loop", chunk=chunk, cold=cold
        )
        program = assemble("Loop:\nret\n" + text)
        total, _ = executed_hot_path_insts(program, "H_P")
        assert total == spec.body_insts + 1  # body + tail jump


class TestBranchyHandler:
    def test_blocks_present(self):
        spec = HandlerSpec(alu=16, loads=5, stores=0, guest_branch=True)
        text = generate_handler_asm("H_LT", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        assert program.has_block("H_LT_nt")
        assert program.has_block("H_LT_tk")

    def test_chain_ends_in_guest_beq(self):
        spec = HandlerSpec(alu=16, loads=5, stores=0, guest_branch=True)
        text = generate_handler_asm("H_LT", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        _total, final = executed_hot_path_insts(program, "H_LT")
        assert final.term.mnemonic == "beq"
        assert final.term.target_label == "H_LT_tk"

    def test_taken_extra_size(self):
        spec = HandlerSpec(alu=16, guest_branch=True, taken_extra=5)
        text = generate_handler_asm("H_B", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        assert program.block("H_B_tk").n_insts == 5 + 1  # + tail jump


class TestWorkLoopHandler:
    def test_blocks_present(self):
        spec = HandlerSpec(alu=20, loads=6, stores=4, has_work_loop=True)
        text = generate_handler_asm("H_C", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        work = program.block("H_C_w")
        assert work.term.mnemonic == "bne"
        assert work.term.target_label == "H_C_w"  # backward self-loop
        assert work.n_insts == WORK_LOOP_INSTS
        assert program.block("H_C_x").term.kind is Kind.JUMP


class TestCalloutHandler:
    def test_ends_with_indirect_call(self):
        spec = HandlerSpec(alu=40, loads=10, stores=8, calls_out=True)
        text = generate_handler_asm("H_CALL", spec, "br {loop}", "Loop")
        program = assemble("Loop:\nret\n" + text)
        _total, final = executed_hot_path_insts(program, "H_CALL")
        assert final.term.kind is Kind.CALL_IND
        ret_block = program.block("H_CALL_r")
        assert ret_block.term.kind is Kind.JUMP


class TestStub:
    def test_stub_structure(self):
        program = assemble(generate_stub_asm("sqrt"))
        assert program.has_block("B_sqrt")
        work = program.block("B_sqrt_w")
        assert work.term.mnemonic == "bne"
        exit_block = program.block("B_sqrt_x")
        assert exit_block.term.kind is Kind.RET


class TestWorkLoopIterations:
    def test_zero_or_negative(self):
        assert work_loop_iterations(0) == 0
        assert work_loop_iterations(-5) == 0

    def test_rounds_up(self):
        assert work_loop_iterations(1) == 1
        assert work_loop_iterations(WORK_LOOP_INSTS) == 1
        assert work_loop_iterations(WORK_LOOP_INSTS + 1) == 2

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_models_at_least_requested_work(self, cost):
        iterations = work_loop_iterations(cost)
        assert iterations * WORK_LOOP_INSTS >= cost
        assert iterations <= cost // WORK_LOOP_INSTS + 1


class TestThreadedTailNaming:
    def test_tail_placeholder_substitution(self):
        spec = HandlerSpec(alu=8)
        text = generate_handler_asm("H_Z", spec, "br {name}_T", "Loop")
        assert "br H_Z_T" in text
