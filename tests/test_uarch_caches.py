"""Unit tests for cache, TLB and DRAM models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.caches import Cache, Tlb
from repro.uarch.memory import DramModel, DramTimings


class TestCacheGeometry:
    def test_valid(self):
        cache = Cache(16 * 1024, 2, 64)
        assert cache.n_sets == 128
        assert cache.line_shift == 6

    def test_size_not_divisible(self):
        with pytest.raises(ValueError, match="divisible"):
            Cache(1000, 2, 64)

    def test_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="power of two"):
            Cache(1536 * 2, 2, 48)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="set count"):
            Cache(192, 1, 64)

    def test_negative(self):
        with pytest.raises(ValueError):
            Cache(-1, 2)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache(1024, 2, 64)
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.accesses == 2
        assert cache.misses == 1

    def test_same_line_hits(self):
        cache = Cache(1024, 2, 64)
        cache.access(0x100)
        assert cache.access(0x13F)  # same 64B line
        assert not cache.access(0x140)  # next line

    def test_lru_eviction(self):
        cache = Cache(2 * 64, 2, 64)  # 1 set, 2 ways
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x000)  # refresh line 0
        cache.access(0x080)  # evicts 0x040
        assert cache.contains(0x000)
        assert not cache.contains(0x040)
        assert cache.contains(0x080)

    def test_access_line_matches_access(self):
        a = Cache(1024, 2, 64)
        b = Cache(1024, 2, 64)
        addresses = [0x0, 0x40, 0x80, 0x0, 0x1040, 0x40, 0x2000, 0x0]
        for address in addresses:
            assert a.access(address) == b.access_line(address >> 6)
        assert a.misses == b.misses

    def test_flush(self):
        cache = Cache(1024, 2, 64)
        cache.access(0x100)
        cache.flush()
        assert not cache.contains(0x100)

    def test_miss_rate(self):
        cache = Cache(1024, 2, 64)
        assert cache.miss_rate == 0.0
        cache.access(0x0)
        cache.access(0x0)
        assert cache.miss_rate == 0.5

    @given(st.lists(st.integers(0, 1 << 16), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_second_access_to_same_address_back_to_back_hits(self, addresses):
        cache = Cache(4096, 4, 64)
        for address in addresses:
            cache.access(address)
            assert cache.access(address)  # immediate re-access always hits

    @given(st.lists(st.integers(0, 1 << 14), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, addresses):
        cache = Cache(1024, 2, 64)
        for address in addresses:
            cache.access(address)
        resident = sum(len(ways) for ways in cache._sets)
        assert resident <= 1024 // 64


class TestTlb:
    def test_page_granularity(self):
        tlb = Tlb(4)
        assert not tlb.access(0x1000)
        assert tlb.access(0x1FFF)  # same 4K page
        assert not tlb.access(0x2000)

    def test_lru_capacity(self):
        tlb = Tlb(2)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)
        tlb.access(0x2000)  # evicts 0x1000
        assert tlb.access(0x0000)
        assert not tlb.access(0x1000)

    def test_flush(self):
        tlb = Tlb(4)
        tlb.access(0x1000)
        tlb.flush()
        assert not tlb.access(0x1000)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            Tlb(0)


class TestDram:
    def test_row_hit_cheaper_than_conflict(self):
        dram = DramModel(DramTimings(), core_clock_mhz=1000.0)
        first = dram.access(0x0)        # row miss (empty bank)
        hit = dram.access(0x40)         # same row
        # Same bank, different row (row size 8 KiB, banks 8 -> stride 64K).
        conflict = dram.access(0x0 + 8192 * 8)
        assert hit < first <= conflict

    def test_row_hit_rate(self):
        dram = DramModel(DramTimings(), core_clock_mhz=1000.0)
        dram.access(0x0)
        dram.access(0x10)
        dram.access(0x20)
        assert dram.row_hit_rate == pytest.approx(2 / 3)

    def test_scales_with_core_clock(self):
        slow_core = DramModel(DramTimings(1066, 7, 7, 7), core_clock_mhz=50.0)
        fast_core = DramModel(DramTimings(1600, 11, 11, 11), core_clock_mhz=1000.0)
        assert slow_core.access(0x0) < fast_core.access(0x0)

    def test_latency_positive(self):
        dram = DramModel(DramTimings(), core_clock_mhz=1000.0)
        for address in range(0, 1 << 18, 4096):
            assert dram.access(address) >= 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DramModel(DramTimings(), 1000.0, banks=0)
        with pytest.raises(ValueError):
            DramModel(DramTimings(), 1000.0, row_bytes=1000)

    def test_timings_clock(self):
        assert DramTimings(1600, 11, 11, 11).clock_mhz == 800.0
