"""Edge-case behaviour across the language frontend and both VMs."""

import pytest

from repro.vm.values import VmError, VmTypeError

from conftest import run_both, run_js, run_lua


class TestNumericEdges:
    def test_float_int_equality(self):
        assert run_both("print(1 == 1.0);") == ["true"]

    def test_negative_zero_modulo(self):
        assert run_both("print(-4 % 3); print(4 % -3);") == ["2", "-2"]

    def test_huge_exponent_floats(self):
        assert run_both("print(1e300 * 10.0);") == run_both("print(1e301);")

    def test_chained_division(self):
        assert run_both("print(100 / 5 / 2);") == ["10.0"]

    def test_integer_overflow_free(self):
        # Arbitrary precision: no wraparound at 2^63.
        assert run_both(f"print({2**62} * 4);") == [str(2**64)]

    def test_mixed_precision_loop(self):
        src = "var x = 1; for i = 1, 5 { x = x * 2.5; } print(x);"
        assert run_both(src) == [repr(2.5**5)]


class TestStringEdges:
    def test_empty_string_ops(self):
        assert run_both('print(len("")); print("" .. "");') == ["0", ""]

    def test_escape_roundtrip(self):
        assert run_both(r'print("a\tb");') == ["a\tb"]

    def test_string_comparison(self):
        assert run_both('print("abc" < "abd"); print("Z" < "a");') == [
            "true", "true",
        ]

    def test_concat_precedence_with_comparison(self):
        assert run_both('print("ab" == "a" .. "b");') == ["true"]


class TestCollectionEdges:
    def test_array_of_arrays_identity(self):
        src = """
        var inner = [1];
        var outer = [inner, inner];
        outer[0][0] = 9;
        print(outer[1][0]);
        """
        assert run_both(src) == ["9"]

    def test_map_mixed_key_types(self):
        src = """
        var m = {};
        m[1] = "int";
        m["1"] = "str";
        print(m[1] .. " " .. m["1"]);
        """
        assert run_both(src) == ["int str"]

    def test_array_growth_one_by_one(self):
        src = """
        var a = [];
        for i = 0, 99 { a[i] = i; }
        print(len(a) .. " " .. a[99]);
        """
        assert run_both(src) == ["100 99"]

    def test_push_pop_as_stack(self):
        src = """
        var s = [];
        push(s, 1); push(s, 2); push(s, 3);
        print(pop(s) .. pop(s) .. pop(s) .. len(s));
        """
        assert run_both(src) == ["3210"]


class TestErrorParity:
    """Both VMs must raise on the same erroneous programs."""

    @pytest.mark.parametrize(
        "source",
        [
            "print(1 < nil);",          # order with nil
            "print(nil .. 1);",         # concat nil
            "var a = [1]; a[5] = 0;",   # sparse array write
            "print(len(5));",           # length of number
            "var a = [1]; print(a[true]);",  # bool index
        ],
    )
    def test_both_raise(self, source):
        with pytest.raises((VmError, VmTypeError)):
            run_lua(source)
        with pytest.raises((VmError, VmTypeError)):
            run_js(source)

    def test_documented_plus_on_string_divergence(self):
        """'+' on strings is the one semantic split: the Lua-like VM raises
        (arithmetic only), the JS-like VM concatenates (ToString coercion).
        Portable scriptlet code uses '..' for concatenation."""
        with pytest.raises(VmTypeError):
            run_lua('print("a" + 1);')
        assert run_js('print("a" + 1);') == ["a1"]

    def test_division_by_zero_both(self):
        for runner in (run_lua, run_js):
            with pytest.raises(VmError):
                runner("print(1 // 0);")


class TestControlFlowEdges:
    def test_empty_blocks_everywhere(self):
        src = "if (true) { } else { } while (false) { } for i = 1, 0 { } print(1);"
        assert run_both(src) == ["1"]

    def test_deeply_nested_blocks(self):
        src = "var x = 0;" + "if (true) { " * 12 + "x = 7;" + " }" * 12 + " print(x);"
        assert run_both(src) == ["7"]

    def test_loop_variable_scoping(self):
        src = """
        fn f() {
            var total = 0;
            for i = 1, 3 { total = total + i; }
            for i = 1, 3 { total = total + i; }
            return total;
        }
        print(f());
        """
        assert run_both(src) == ["12"]

    def test_return_inside_nested_loop(self):
        src = """
        fn find(limit) {
            for i = 2, limit {
                for j = 2, i - 1 {
                    if (i % j == 0) { break; }
                    if (j * j > i) { return i; }
                }
            }
            return 0;
        }
        print(find(30));
        """
        assert run_both(src)

    def test_while_with_complex_condition(self):
        src = """
        var a = 0; var b = 10;
        while (a < 5 and b > 5 or false) { a = a + 1; b = b - 1; }
        print(a .. " " .. b);
        """
        assert run_both(src) == ["5 5"]
