"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblyError, Kind, assemble


class TestBasicAssembly:
    def test_simple_program(self):
        program = assemble("add r1, r2, r3\nsub r4, r5, r6\n")
        assert len(program) == 2
        assert program.instructions[0].mnemonic == "add"
        assert program.instructions[1].kind is Kind.ALU

    def test_pcs_sequential(self):
        program = assemble("add r1, r2, r3\nnop\nnop\n", base=0x1000)
        assert [i.pc for i in program.instructions] == [0x1000, 0x1004, 0x1008]

    def test_comments_stripped(self):
        program = assemble("add r1, r2, r3  # comment\nnop ; other comment\n")
        assert len(program) == 2

    def test_blank_lines_ignored(self):
        program = assemble("\n\nadd r1, r2, r3\n\n\n")
        assert len(program) == 1


class TestLabels:
    def test_label_resolution(self):
        program = assemble(
            """
            Top:
                add r1, r2, r3
                beq r1, Top
            """
        )
        branch = program.instructions[1]
        assert branch.target == program.labels["Top"]
        assert branch.target_label == "Top"

    def test_forward_reference(self):
        program = assemble("br End\nnop\nEnd:\nret\n")
        assert program.instructions[0].target == program.labels["End"]

    def test_label_with_instruction_on_same_line(self):
        program = assemble("Start: add r1, r2, r3\n")
        assert program.labels["Start"] == program.base

    def test_multiple_labels_same_address(self):
        program = assemble("A:\nB:\nnop\n")
        assert program.labels["A"] == program.labels["B"]

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("X:\nnop\nX:\nnop\n")

    def test_unresolved_label_raises(self):
        with pytest.raises(AssemblyError, match="unresolved"):
            assemble("br Nowhere\n")


class TestDirectives:
    def test_align_pads_with_nops(self):
        program = assemble("nop\n.align 16\nadd r1, r2, r3\n", base=0x1000)
        add = next(i for i in program.instructions if i.mnemonic == "add")
        assert add.pc % 16 == 0
        nops = [i for i in program.instructions if i.mnemonic == "nop"]
        assert len(nops) == 4  # 1 explicit + 3 padding

    def test_align_noop_when_aligned(self):
        program = assemble(".align 16\nadd r1, r2, r3\n", base=0x1000)
        assert len(program) == 1

    def test_align_bad_boundary(self):
        with pytest.raises(AssemblyError, match="multiple"):
            assemble(".align 3\n")

    def test_align_missing_arg(self):
        with pytest.raises(AssemblyError, match="argument"):
            assemble(".align\n")

    def test_category_applies_to_following(self):
        program = assemble(
            ".category dispatch\nadd r1, r2, r3\n.category handler\nnop\n"
        )
        assert program.instructions[0].category == "dispatch"
        assert program.instructions[1].category == "handler"


class TestScdSyntax:
    def test_op_suffix_on_load(self):
        program = assemble("ldl.op r9, 0(r5)\n")
        inst = program.instructions[0]
        assert inst.op_suffix
        assert inst.kind is Kind.LOAD
        assert inst.mnemonic == "ldl"

    def test_op_suffix_on_alu_rejected(self):
        with pytest.raises(AssemblyError, match="only valid on loads"):
            assemble("add.op r1, r2, r3\n")

    def test_bop_jru_flush(self):
        program = assemble("bop\njru (r1)\njte.flush\nsetmask r7\n")
        kinds = [i.kind for i in program.instructions]
        assert kinds == [Kind.BOP, Kind.JRU, Kind.JTE_FLUSH, Kind.SETMASK]


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("bogus r1\n")

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nbogus r1\n")
        except AssemblyError as err:
            assert err.line_no == 2
        else:
            pytest.fail("expected AssemblyError")

    def test_branch_without_label(self):
        with pytest.raises(AssemblyError, match="target label"):
            assemble("beq\n")

    def test_branch_to_register_rejected(self):
        with pytest.raises(AssemblyError, match="direct label"):
            assemble("br (r1)\n")


def test_base_address_respected():
    program = assemble("nop\n", base=0x4_0000)
    assert program.base == 0x4_0000
    assert program.instructions[0].pc == 0x4_0000
