"""Functional validation of the 11 Table III workloads on both VMs."""

import pytest

from repro.vm.js import JsVM
from repro.vm.lua import LuaVM
from repro.workloads import WORKLOADS, workload, workload_names

ALL = list(workload_names())


def test_eleven_workloads():
    assert len(ALL) == 11


def test_paper_names_present():
    expected = {
        "binary-trees", "fannkuch-redux", "k-nucleotide", "mandelbrot",
        "n-body", "spectral-norm", "n-sieve", "random", "fibo",
        "ackermann", "pidigits",
    }
    assert set(ALL) == expected


def test_unknown_workload_raises():
    with pytest.raises(KeyError, match="unknown workload"):
        workload("quicksort")


def test_fpga_inputs_strictly_larger():
    for bench in WORKLOADS.values():
        assert bench.fpga_n > bench.sim_n, bench.name


def test_source_substitution():
    bench = workload("fibo")
    assert "@N@" not in bench.source(scale="sim")
    assert f"fib({bench.sim_n})" in bench.source(scale="sim")
    assert f"fib({bench.fpga_n})" in bench.source(scale="fpga")
    assert "fib(99)" in bench.source(n=99)


@pytest.mark.parametrize("name", ALL)
def test_lua_matches_reference(name):
    bench = workload(name)
    vm = LuaVM.from_source(bench.source(scale="sim"))
    assert vm.run() == bench.expected_output(scale="sim")


@pytest.mark.parametrize("name", ALL)
def test_js_matches_reference(name):
    bench = workload(name)
    vm = JsVM.from_source(bench.source(scale="sim"))
    assert vm.run() == bench.expected_output(scale="sim")


class TestKnownValues:
    """Spot-check against published ground truth, not just our reference."""

    def test_fibo(self):
        assert workload("fibo").expected_output(n=20) == ["6765"]

    def test_fannkuch_known(self):
        # Known CLBG values: Pfannkuchen(6) = 10, checksum 49.
        out = workload("fannkuch-redux").expected_output(n=6)
        assert out == ["49", "Pfannkuchen(6) = 10"]

    def test_fannkuch_7(self):
        out = workload("fannkuch-redux").expected_output(n=7)
        assert out == ["228", "Pfannkuchen(7) = 16"]

    def test_ackermann_value(self):
        # Ack(3, n) = 2^(n+3) - 3.
        out = workload("ackermann").expected_output(n=3)
        assert out == ["Ack(3,3): 61"]

    def test_pidigits_prefix(self):
        out = workload("pidigits").expected_output(n=20)
        assert out[0].startswith("3141592653")
        assert out[1].startswith("5897932384")

    def test_nsieve_prime_counts(self):
        out = workload("n-sieve").expected_output(n=1000)
        assert out[0] == "Primes up to 1000 168"
        assert out[1] == "Primes up to 500 95"

    def test_spectral_norm_converges(self):
        (value,) = workload("spectral-norm").expected_output(n=16)
        assert abs(float(value) - 1.274) < 0.01

    def test_nbody_energy_roughly_conserved(self):
        before, after = workload("n-body").expected_output(n=60)
        assert abs(float(before) - float(after)) < 1e-3
        assert float(before) < 0  # bound system

    def test_binary_trees_check_values(self):
        out = workload("binary-trees").expected_output(n=4)
        # A perfect binary tree of depth d has 2^(d+1) - 1 nodes.
        assert out[0].endswith("check: 63")  # stretch depth 5
        assert out[-1].endswith("check: 31")  # long-lived depth 4

    def test_mandelbrot_header(self):
        out = workload("mandelbrot").expected_output(n=12)
        assert out[0] == "P4"
        assert out[1] == "12 12"


class TestDeterminism:
    def test_repeat_runs_identical(self):
        bench = workload("random")
        first = LuaVM.from_source(bench.source(scale="sim")).run()
        second = LuaVM.from_source(bench.source(scale="sim")).run()
        assert first == second

    def test_descriptions_from_table3(self):
        assert "hashtable" in workload("k-nucleotide").description
        assert "N-body" in workload("n-body").description
