"""Execute hand-assembled stack bytecode: opcodes the compiler never emits."""

import pytest

from repro.vm.js.compiler import JsFunctionCode, JsModule
from repro.vm.js.interp import JsVM
from repro.vm.js.opcodes import JsOp, operand_bytes
from repro.vm.values import VmError


def build(words):
    """Encode a list of (op, arg-or-None) into a runnable main function."""
    code = bytearray()
    for op, arg in words:
        code.append(int(op))
        width = operand_bytes(op)
        if width:
            code.extend(int(arg).to_bytes(width, "little", signed=True))
    fn = JsFunctionCode(name="main", nparams=0, code=code, nlocals=4)
    fn.finalize()
    return JsModule(functions_list=[fn], functions={})


def run(words, atoms=()):
    module = build(words)
    module.main.atoms = list(atoms)
    vm = JsVM(module)
    vm.run()
    return vm


class TestStackShuffles:
    def test_dup(self):
        vm = run(
            [
                (JsOp.INT8, 21),
                (JsOp.DUP, None),
                (JsOp.ADD, None),
                (JsOp.SETGNAME, 0),
                (JsOp.POP, None),
                (JsOp.STOP, None),
            ],
            atoms=["result"],
        )
        assert vm.globals["result"] == 42

    def test_swap(self):
        vm = run(
            [
                (JsOp.INT8, 10),
                (JsOp.INT8, 3),
                (JsOp.SWAP, None),
                (JsOp.SUB, None),  # after swap: 3 - 10
                (JsOp.SETGNAME, 0),
                (JsOp.POP, None),
                (JsOp.STOP, None),
            ],
            atoms=["result"],
        )
        assert vm.globals["result"] == -7

    def test_nop_and_loophead_are_inert(self):
        vm = run(
            [
                (JsOp.NOP, None),
                (JsOp.LOOPHEAD, None),
                (JsOp.ONE, None),
                (JsOp.SETGNAME, 0),
                (JsOp.POP, None),
                (JsOp.STOP, None),
            ],
            atoms=["result"],
        )
        assert vm.globals["result"] == 1


class TestJumpEncodings:
    def test_ifne_jumps_on_truthy(self):
        # Layout: TRUE@0, IFNE@1(3B), ZERO@4, SETGNAME@5(3B), POP@8, STOP@9.
        # IFNE's operand is relative to its own start: 9 - 1 = 8.
        vm = run(
            [
                (JsOp.TRUE, None),
                (JsOp.IFNE, 8),
                (JsOp.ZERO, None),    # skipped
                (JsOp.SETGNAME, 0),   # skipped
                (JsOp.POP, None),     # skipped
                (JsOp.STOP, None),
            ],
            atoms=["result"],
        )
        assert "result" not in vm.globals


class TestUnimplemented:
    @pytest.mark.parametrize(
        "op", [JsOp.TABLESWITCH, JsOp.THROW, JsOp.ITER, JsOp.GENERATOR,
               JsOp.DELPROP, JsOp.UNUSED135]
    )
    def test_raises_not_generated(self, op):
        words = [(op, 0 if operand_bytes(op) else None), (JsOp.STOP, None)]
        with pytest.raises(VmError, match="not generated"):
            run(words)


class TestStrictOps:
    def test_stricteq_on_compiler_path_not_needed(self):
        # STRICTEQ exists in the table but is not emitted; executing it
        # raises (documented behaviour for unused opcodes).
        with pytest.raises(VmError):
            run([(JsOp.STRICTEQ, None), (JsOp.STOP, None)])
