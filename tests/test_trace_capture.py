"""Tests for the columnar trace capture/replay subsystem.

Covers the PR's core exactness contracts: recorded-trace replay produces
byte-identical results vs. live interpretation for every scheme on both
VMs, the steady-state memo changes no counter while actually engaging,
the binary format round-trips and rejects corruption as a miss, and the
harness plumbing (modes, cache keys, execute_job reuse) behaves.
"""

import pytest

from repro.core.simulation import SCHEMES, simulate
from repro.harness.cache import ResultCache, TraceStore
from repro.harness.parallel import SimJob, execute_job
from repro.uarch.config import cortex_a5
from repro.uarch.pipeline import Machine
from repro.vm import capture
from repro.vm.capture import (
    RecordedTrace,
    TraceFormatError,
    TraceMissError,
    TraceRecorder,
    resolve_trace_mode,
    set_default_trace_mode,
    trace_key,
)
from repro.vm.lua import LuaVM

ALL_SCHEMES = SCHEMES + ("ttc", "cascaded", "ittage", "superinst")

#: Long scalar loop: >28k events so the steady-state memo (4096-event
#: chunks) sees each chunk phase more than once and actually fires.
LOOP_SRC = 'var i = 0;\nwhile (i < 5000) { i = i + 1; }\nprint("done " .. i);\n'


@pytest.fixture
def store(tmp_path):
    return TraceStore(root=tmp_path)


@pytest.fixture(autouse=True)
def _reset_trace_mode():
    set_default_trace_mode(None)
    yield
    set_default_trace_mode(None)


def _record_trace(store, source):
    simulate(
        "scriptlet", vm="lua", scheme="baseline", source=source,
        check_output=False, trace_store=store, trace_mode="record",
    )
    return store.get(trace_key("lua", source, 100_000_000))


class TestRoundTrip:
    def test_bytes_round_trip(self, store):
        trace = _record_trace(store, LOOP_SRC)
        clone = RecordedTrace.from_bytes(trace.to_bytes(key=trace.key))
        assert clone.n_events == trace.n_events
        for name in dict(capture.EVENT_COLUMNS):
            assert list(clone.columns[name]) == list(trace.columns[name])
        assert clone.daddr_pool == trace.daddr_pool
        assert clone.builtin_pool == trace.builtin_pool
        assert clone.cost_pool == trace.cost_pool
        assert clone.output == trace.output
        assert clone.guest_steps == trace.guest_steps
        assert clone.key == trace.key

    def test_recorder_tees_downstream(self):
        seen = []
        recorder = TraceRecorder(lambda *event: seen.append(event))
        vm = LuaVM.from_source('print(1 + 2);')
        output = vm.run(trace=recorder.hook)
        assert recorder.events == len(seen) > 0
        trace = recorder.seal(output, vm.steps)
        replayed = []
        capture.replay_events(trace, lambda *event: replayed.append(event))
        assert replayed == seen


class TestReplayIdentity:
    @pytest.mark.parametrize("vm", ("lua", "js"))
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_replay_identical_to_live(self, store, vm, scheme):
        live = simulate(
            "fibo", vm=vm, scheme=scheme, n=8, check_output=False,
            trace_store=store, trace_mode="record",
        )
        replayed = simulate(
            "fibo", vm=vm, scheme=scheme, n=8, check_output=False,
            trace_store=store, trace_mode="replay",
        )
        assert replayed == live

    def test_trace_shared_across_schemes(self, store):
        """One recording serves every scheme: the event stream does not
        depend on the dispatch strategy under test."""
        simulate(
            "fibo", vm="lua", scheme="baseline", n=8, check_output=False,
            trace_store=store, trace_mode="record",
        )
        for scheme in ALL_SCHEMES:
            pure = simulate(
                "fibo", vm="lua", scheme=scheme, n=8, check_output=False,
            )
            replayed = simulate(
                "fibo", vm="lua", scheme=scheme, n=8, check_output=False,
                trace_store=store, trace_mode="replay",
            )
            assert replayed == pure

    def test_context_switch_interval_identity(self, store):
        kwargs = dict(
            vm="lua", n=8, check_output=False,
            context_switch_interval=100, trace_store=store,
        )
        live = simulate("fibo", scheme="scd", trace_mode="record", **kwargs)
        replayed = simulate("fibo", scheme="scd", trace_mode="replay", **kwargs)
        assert replayed == live


class TestSteadyStateMemo:
    def test_memo_changes_no_counter_and_engages(self, store):
        live = simulate(
            "loop", vm="lua", scheme="scd", source=LOOP_SRC,
            check_output=False, trace_store=store, trace_mode="record",
        )
        memo_metrics: dict = {}
        with_memo = simulate(
            "loop", vm="lua", scheme="scd", source=LOOP_SRC,
            check_output=False, trace_store=store, trace_mode="replay",
            metrics=memo_metrics,
        )
        without_memo = simulate(
            "loop", vm="lua", scheme="scd", source=LOOP_SRC,
            check_output=False, trace_store=store, trace_mode="replay",
            replay_memo=False,
        )
        # The memo must be invisible in every counter...
        assert with_memo == live
        assert without_memo == live
        # ...while actually taking the fast path on a steady-state loop.
        assert memo_metrics["memo_hits"] > 0
        assert memo_metrics["memo_events"] >= capture.MEMO_CHUNK_EVENTS

    def test_machine_restore_state_round_trip(self, store):
        """restore_state() is an exact inverse of state_digest()."""
        trace = _record_trace(store, LOOP_SRC)
        from repro.native.model import ModelRunner, get_model

        machine = Machine(cortex_a5())
        runner = ModelRunner(get_model("lua", "baseline"), machine)
        runner.start()
        events = list(zip(*(trace.columns[n] for n, _ in capture.EVENT_COLUMNS)))
        pools = capture._replay_pools(trace)
        daddr_pool, builtin_pool, cost_pool = pools

        def feed(start, stop):
            for op, site, taken, callee, daddr_id, builtin_id, cost_id in events[start:stop]:
                runner.on_event(
                    op, site, taken, callee,
                    daddr_pool[daddr_id], builtin_pool[builtin_id],
                    cost_pool[cost_id],
                )

        feed(0, 400)
        snapshot = machine.state_digest()
        feed(400, 900)
        assert machine.state_digest() != snapshot
        machine.restore_state(snapshot)
        assert machine.state_digest() == snapshot


class TestStoreContracts:
    def test_replay_mode_raises_on_missing_trace(self, store):
        with pytest.raises(TraceMissError):
            simulate(
                "fibo", vm="lua", scheme="scd", n=8, check_output=False,
                trace_store=store, trace_mode="replay",
            )

    def test_corrupt_trace_reads_as_miss(self, store):
        trace = _record_trace(store, LOOP_SRC)
        key = trace.key
        path = store.entry_path(key)
        blob = path.read_bytes()

        for mutant in (
            blob[: len(blob) // 2],          # truncated
            b"",                              # empty
            b"garbage" * 16,                  # not a trace at all
            blob[:6] + b"\xff\xff" + blob[8:],  # version flipped
            blob[:-4] + b"\x00\x00\x00\x00",  # payload corrupted vs CRC
        ):
            fresh = TraceStore(root=store.root)
            path.write_bytes(mutant)
            assert fresh.get(key) is None

        # Restoring the original bytes restores the hit.
        path.write_bytes(blob)
        assert TraceStore(root=store.root).get(key) is not None

    def test_key_embeds_format_version(self, monkeypatch):
        before = trace_key("lua", "print(1);", 1000)
        monkeypatch.setattr(capture, "TRACE_FORMAT_VERSION", 999)
        after = trace_key("lua", "print(1);", 1000)
        assert before != after

    def test_key_depends_on_vm_source_and_budget(self):
        base = trace_key("lua", "print(1);", 1000)
        assert trace_key("js", "print(1);", 1000) != base
        assert trace_key("lua", "print(2);", 1000) != base
        assert trace_key("lua", "print(1);", 2000) != base

    def test_version_mismatch_on_disk_reads_as_miss(self, store, monkeypatch):
        trace = _record_trace(store, LOOP_SRC)
        data = trace.to_bytes(key=trace.key)
        monkeypatch.setattr(capture, "TRACE_FORMAT_VERSION", 999)
        with pytest.raises(TraceFormatError):
            RecordedTrace.from_bytes(data)


class TestModeResolution:
    def test_explicit_beats_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("SCD_REPRO_TRACE", "record")
        assert resolve_trace_mode() == "record"
        set_default_trace_mode("off")
        assert resolve_trace_mode() == "off"
        assert resolve_trace_mode("replay") == "replay"

    def test_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv("SCD_REPRO_TRACE", raising=False)
        assert resolve_trace_mode() == "auto"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            resolve_trace_mode("sometimes")

    def test_simulate_without_store_stays_pure(self, tmp_path, monkeypatch):
        """No trace_store -> no trace files, whatever the ambient mode."""
        monkeypatch.setenv("SCD_REPRO_CACHE_DIR", str(tmp_path))
        set_default_trace_mode("record")
        simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)
        assert not any(tmp_path.rglob("*.bin"))


class TestHarnessIntegration:
    def test_execute_job_records_then_replays(self, tmp_path):
        cache = ResultCache("trace-int", root=tmp_path)
        first = SimJob(
            "fibo", "lua", "baseline",
            kwargs=(("check_output", False), ("n", 8)),
        )
        second = SimJob(
            "fibo", "lua", "scd",
            kwargs=(("check_output", False), ("n", 8)),
        )
        _, meta_first = execute_job(first, cache)
        _, meta_second = execute_job(second, cache)
        assert meta_first["replayed"] is False
        assert meta_second["replayed"] is True
        result, _ = execute_job(second, cache)
        pure = simulate(
            "fibo", vm="lua", scheme="scd", n=8, check_output=False,
        )
        assert result == pure

    def test_store_round_trips_through_disk(self, store):
        trace = _record_trace(store, LOOP_SRC)
        fresh = TraceStore(root=store.root)
        again = fresh.get(trace.key)
        assert again is not None
        assert list(again.columns["ops"]) == list(trace.columns["ops"])
        assert fresh.hits == 1 and fresh.misses == 0
