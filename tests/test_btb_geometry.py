"""Measured Arm BTB geometries: machine wiring, replay-ladder identity,
per-level counters and persisted-memo shape validation.

The multi-level / hashed / tree-pLRU front-end shapes are deliberately
non-inlinable (``btb_inline_sig`` returns None for them), so every rung of
the replay ladder — interpreted, exec-compiled kernels, chunk-compiled
batch — drives the same Machine methods.  These tests pin the resulting
byte-identity and the geometry plumbing around it.
"""

import pickle
import zlib

import pytest

from repro.core.simulation import simulate
from repro.harness.cache import MemoStore, TraceStore, memo_key
from repro.harness.experiments import run_experiment
from repro.native.model import ModelRunner, get_model
from repro.uarch.btb import MultiLevelBtb
from repro.uarch.config import BTB_GEOMETRIES, cortex_a5, with_btb_geometry
from repro.uarch.pipeline import (
    _MEMO_FRAME,
    Machine,
    MemoFormatError,
    SteadyStateMemo,
    btb_inline_sig,
)
from repro.vm.capture import MEMO_CHUNK_EVENTS, trace_key

LOOP_SRC = 'var i = 0;\nwhile (i < 2000) { i = i + 1; }\nprint("done " .. i);\n'


def _sig(result):
    return (
        result.cycles,
        result.instructions,
        result.cpi,
        result.branch_mpki,
        result.bop_hits,
        result.bop_misses,
        result.jte_inserts,
        tuple(sorted(result.mispredicts_by_category.items())),
        tuple(sorted(result.cycle_breakdown.items())),
        result.output,
    )


def _geo_config(geometry):
    return with_btb_geometry(cortex_a5(), geometry)


class TestGeometryWiring:
    @pytest.mark.parametrize("geometry", sorted(BTB_GEOMETRIES))
    def test_machine_builds_multilevel(self, geometry):
        machine = Machine(_geo_config(geometry))
        assert isinstance(machine.btb, MultiLevelBtb)
        assert machine.btb.latencies == tuple(
            level.latency for level in BTB_GEOMETRIES[geometry]
        )
        assert btb_inline_sig(machine.btb) is None

    def test_flat_config_still_inlines(self):
        machine = Machine(cortex_a5())
        sig = btb_inline_sig(machine.btb)
        assert sig == (128, 2, "rr")  # 256 entries / 2 ways, Table II policy

    def test_hashed_or_plru_flat_btb_does_not_inline(self):
        hashed = Machine(cortex_a5().with_changes(btb_index="xor"))
        assert btb_inline_sig(hashed.btb) is None
        plru = Machine(cortex_a5().with_changes(btb_policy="plru"))
        assert btb_inline_sig(plru.btb) is None

    def test_unknown_geometry_rejected(self):
        with pytest.raises(ValueError):
            with_btb_geometry(cortex_a5(), "cortex-m0")

    def test_geometry_only_for_figure11(self):
        with pytest.raises(ValueError):
            run_experiment("figure7", geometry="cortex-a72")
        with pytest.raises(ValueError):
            run_experiment("figure11", geometry="not-a-core")


class TestGeometryLadderIdentity:
    """Interpreted / kernel / batch rungs are byte-identical under every
    measured geometry (the figure11 --geometry acceptance gate)."""

    @pytest.mark.parametrize("geometry", sorted(BTB_GEOMETRIES))
    @pytest.mark.parametrize("scheme", ("baseline", "scd"))
    def test_live_identity(self, geometry, scheme):
        config = _geo_config(geometry)
        interp = simulate("loop", vm="lua", scheme=scheme, source=LOOP_SRC,
                          config=config, use_kernel=False, use_batch=False)
        kernel = simulate("loop", vm="lua", scheme=scheme, source=LOOP_SRC,
                          config=config, use_kernel=True, use_batch=False)
        batch = simulate("loop", vm="lua", scheme=scheme, source=LOOP_SRC,
                         config=config, use_kernel=True, use_batch=True)
        assert _sig(interp) == _sig(kernel) == _sig(batch)

    def test_replay_memo_identity(self, tmp_path):
        """Trace replay with the steady-state memo (counter deltas over the
        extended 15-slot snapshot) matches the event-by-event path."""
        config = _geo_config("cortex-a72")
        store = TraceStore(root=tmp_path)
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 config=config, trace_store=store, trace_mode="record")
        results = [
            simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                     config=config, trace_store=store, trace_mode="replay",
                     replay_memo=memo)
            for memo in (True, False)
        ]
        assert _sig(results[0]) == _sig(results[1])


class TestGeometryCounters:
    def test_level_hits_surface_in_component_counters(self):
        meta: dict = {}
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 config=_geo_config("cortex-a72"), metrics=meta)
        btb = meta["uarch"]["btb"]
        nano_hits, main_hits = btb["level_hits"]
        assert nano_hits > 0            # the hot loop settles into the nano level
        assert main_hits > 0            # first hits fill it from the main level
        assert btb["install_blocked"] >= 0
        # Every main-level-only hit costs redirect bubbles; the nano level
        # is free.  The stall counter can never exceed the main hit count.
        assert 0 < btb["late_hits"] <= main_hits

    def test_flat_config_reports_zero_levels(self):
        meta: dict = {}
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC, metrics=meta)
        assert meta["uarch"]["btb"]["level_hits"] == [0, 0]
        assert meta["uarch"]["btb"]["late_hits"] == 0

    def test_install_blocked_surfaces(self):
        # A 4-entry fully-occupied-by-JTEs BTB blocks ordinary installs.
        config = cortex_a5().with_changes(btb_entries=4, btb_ways=2)
        meta: dict = {}
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 config=config, metrics=meta)
        assert meta["uarch"]["btb"]["install_blocked"] > 0


class TestMemoShapeValidation:
    def _persist_memo(self, tmp_path):
        store = TraceStore(root=tmp_path)
        memos = MemoStore(root=tmp_path)
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 trace_store=store, trace_mode="auto")
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 trace_store=store, trace_mode="replay", memo_store=memos)
        key = memo_key(
            trace_key("lua", LOOP_SRC, 100_000_000), "scd", cortex_a5(),
            None, "flush", get_model("lua", "scd").structure_digest(),
            MEMO_CHUNK_EVENTS,
        )
        payload = memos.get(key)
        assert payload is not None
        return store, memos, key, payload

    def test_import_rejects_geometry_mismatched_btb_digest(self, tmp_path):
        """A payload recorded on the flat BTB must not bind into a machine
        with a measured multi-level geometry: the BTB digest no longer fits
        and import raises instead of silently rebuilding the wrong state."""
        _, _, key, payload = self._persist_memo(tmp_path)
        _, _, entries = pickle.loads(
            zlib.decompress(payload[_MEMO_FRAME.size:])
        )
        assert any(entry[3] is not None for entry in entries)  # real end-states
        machine = Machine(_geo_config("cortex-a72"))
        model = get_model("lua", "scd")
        runner = ModelRunner(model, machine)
        memo = SteadyStateMemo(machine, runner)
        with pytest.raises(MemoFormatError):
            memo.import_payload(payload, model.memo_codec(), key)
        assert memo.loaded == 0

    def test_miskeyed_shard_quarantined_during_simulate(self, tmp_path):
        """simulate() quarantines a shard whose interior fails deep
        validation (here: planted under another config's key) and still
        completes with correct results."""
        store, memos, _, payload = self._persist_memo(tmp_path)
        geo_config = _geo_config("cortex-a72")
        geo_key = memo_key(
            trace_key("lua", LOOP_SRC, 100_000_000), "scd", geo_config,
            None, "flush", get_model("lua", "scd").structure_digest(),
            MEMO_CHUNK_EVENTS,
        )
        memos.put(geo_key, payload)  # mis-keyed: frame is valid, interior is not
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 config=geo_config, trace_store=store, trace_mode="record")
        meta: dict = {}
        reference = simulate(
            "loop", vm="lua", scheme="scd", source=LOOP_SRC, config=geo_config,
            trace_store=store, trace_mode="replay", replay_memo=False,
        )
        result = simulate(
            "loop", vm="lua", scheme="scd", source=LOOP_SRC, config=geo_config,
            trace_store=store, trace_mode="replay", memo_store=memos,
            metrics=meta,
        )
        assert meta["memo_loaded"] == 0
        assert _sig(result) == _sig(reference)
        quarantine = memos.root / "quarantine" / memos.name
        assert list(quarantine.glob("*.bin"))
        assert list(quarantine.glob("*.reason.txt"))
