"""Unit tests for direction predictors, RAS and the tagged target cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.predictors import (
    BimodalPredictor,
    GsharePredictor,
    LocalPredictor,
    ReturnAddressStack,
    TaggedTargetCache,
    TournamentPredictor,
    make_direction_predictor,
)


class TestBimodal:
    def test_learns_always_taken(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, True)
        assert predictor.predict(0x100)

    def test_learns_never_taken(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, False)
        assert not predictor.predict(0x100)

    def test_hysteresis(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, True)
        predictor.update(0x100, False)  # one anomaly
        assert predictor.predict(0x100)  # still predicts taken

    def test_aliasing(self):
        predictor = BimodalPredictor(4)
        for _ in range(4):
            predictor.update(0x0, True)
        # PC 16 words away aliases into the same counter (4-entry table).
        assert predictor.predict(0x40)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            BimodalPredictor(0)


class TestGshare:
    def test_learns_alternating_pattern(self):
        predictor = GsharePredictor(128)
        outcomes = [True, False] * 64
        for taken in outcomes:
            predictor.update(0x200, taken)
        correct = 0
        state_history = predictor.history
        for taken in [True, False] * 16:
            if predictor.predict(0x200) == taken:
                correct += 1
            predictor.update(0x200, taken)
        assert correct >= 28  # near-perfect once history captures period

    def test_history_advances(self):
        predictor = GsharePredictor(128)
        before = predictor.history
        predictor.update(0x100, True)
        assert predictor.history != before or before == 1


class TestLocal:
    def test_learns_short_loop(self):
        predictor = LocalPredictor(64)
        # taken 3x then not-taken, repeating (a 4-iteration loop).
        pattern = [True, True, True, False] * 40
        for taken in pattern:
            predictor.update(0x300, taken)
        # After training, the loop exit must be predictable.
        hits = 0
        for taken in [True, True, True, False] * 8:
            if predictor.predict(0x300) == taken:
                hits += 1
            predictor.update(0x300, taken)
        assert hits >= 28


class TestTournament:
    def test_beats_components_on_mixed_workload(self):
        predictor = TournamentPredictor()
        # PC A: biased-taken (bimodal-friendly), PC B: loop pattern.
        sequence = []
        for i in range(400):
            sequence.append((0x100, True))
            sequence.append((0x200, i % 4 != 3))
        hits = 0
        for pc, taken in sequence:
            if predictor.predict(pc) == taken:
                hits += 1
            predictor.update(pc, taken)
        assert hits / len(sequence) > 0.9

    def test_observe_equivalent_to_predict_update(self):
        a = TournamentPredictor(64, 32, 64)
        b = TournamentPredictor(64, 32, 64)
        import random

        rng = random.Random(7)
        for _ in range(500):
            pc = rng.randrange(0, 1024) * 4
            taken = rng.random() < 0.7
            correct_a = a.predict(pc) == taken
            a.update(pc, taken)
            correct_b = b.observe(pc, taken)
            assert correct_a == correct_b


@pytest.mark.parametrize("spec", ["tournament", "gshare", "bimodal", "local"])
def test_observe_matches_predict_update(spec):
    import random

    a = make_direction_predictor(spec)
    b = make_direction_predictor(spec)
    rng = random.Random(11)
    for _ in range(400):
        pc = rng.randrange(0, 256) * 4
        taken = rng.random() < 0.6
        expected = a.predict(pc) == taken
        a.update(pc, taken)
        assert b.observe(pc, taken) == expected


def test_factory_rejects_unknown():
    with pytest.raises(ValueError, match="unknown direction predictor"):
        make_direction_predictor("neural")


class TestReturnAddressStack:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was dropped

    def test_len(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        assert len(ras) == 1

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)

    @given(st.lists(st.integers(0, 1000), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_matches_deep_stack_suffix(self, pushes):
        """A deep-enough RAS behaves exactly like a real stack."""
        ras = ReturnAddressStack(64)
        model = []
        for value in pushes:
            ras.push(value)
            model.append(value)
        while model:
            assert ras.pop() == model.pop()
        assert ras.pop() is None


class TestTaggedTargetCache:
    def test_miss_then_hit(self):
        ttc = TaggedTargetCache(64)
        assert ttc.predict(0x100) is None
        ttc.update(0x100, 0x500)
        # Prediction requires the same history context.
        ttc2 = TaggedTargetCache(64)
        ttc2.update(0x100, 0x500)
        # history changed after update, so same-PC predict may miss: emulate
        # a repeating pattern instead.
        for _ in range(8):
            target = ttc.predict(0x100)
            ttc.update(0x100, 0x500)
        assert ttc.predict(0x100) == 0x500 or target == 0x500

    def test_distinguishes_by_history(self):
        ttc = TaggedTargetCache(256)
        # Pattern: target alternates, correlated with previous target.
        targets = [0x700, 0x800] * 50
        hits = 0
        for target in targets:
            if ttc.predict(0x100) == target:
                hits += 1
            ttc.update(0x100, target)
        assert hits > 60  # history-based: learns alternation

    def test_bad_size(self):
        with pytest.raises(ValueError):
            TaggedTargetCache(0)


class TestCascaded:
    def test_monomorphic_stays_in_stage1(self):
        from repro.uarch.predictors import CascadedPredictor

        predictor = CascadedPredictor()
        for _ in range(10):
            predictor.update(0x100, 0x700)
        assert predictor.predict(0x100) == 0x700
        # No second-stage entry was burned on an easy jump.
        assert all(tag == -1 for tag in predictor._tags)

    def test_polymorphic_allocates_stage2(self):
        from repro.uarch.predictors import CascadedPredictor

        predictor = CascadedPredictor()
        targets = [0x700, 0x800] * 100
        hits = 0
        for target in targets:
            if predictor.predict(0x100) == target:
                hits += 1
            predictor.update(0x100, target)
        assert any(tag != -1 for tag in predictor._tags)
        assert hits > 60

    def test_bad_sizes(self):
        from repro.uarch.predictors import CascadedPredictor

        with pytest.raises(ValueError):
            CascadedPredictor(stage1_entries=0)

    def test_end_to_end_scheme(self):
        from repro.core.simulation import simulate

        base = simulate("fibo", scheme="baseline", n=10, check_output=False)
        cascaded = simulate("fibo", scheme="cascaded", n=10, check_output=False)
        assert cascaded.branch_mpki < base.branch_mpki
        assert cascaded.instructions == base.instructions
