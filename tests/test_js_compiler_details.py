"""White-box tests of the JS compiler's encoding and jump patching."""

import pytest

from repro.lang import parse
from repro.vm.js import JsCompileError, JsOp, JsVM, compile_module_js
from repro.vm.js.opcodes import operand_bytes


def decoded_of(source, fn="main"):
    module = compile_module_js(parse(source))
    target = module.main if fn == "main" else module.functions[fn]
    return target


class TestConstantEncodings:
    @pytest.mark.parametrize(
        "literal,op",
        [
            ("0", JsOp.ZERO),
            ("1", JsOp.ONE),
            ("100", JsOp.INT8),
            ("-5", JsOp.INT8),
            ("40000", JsOp.INT32),
            ("2.5", JsOp.DOUBLE),
            ('"hi"', JsOp.STRING),
            ("true", JsOp.TRUE),
            ("false", JsOp.FALSE),
            ("nil", JsOp.UNDEFINED),
        ],
    )
    def test_shortest_form_chosen(self, literal, op):
        code = decoded_of(f"var x = {literal};")
        ops = [o for o, _a in code.decoded]
        assert op in ops

    def test_bigint_goes_through_atom_table(self):
        code = decoded_of(f"var x = {10**30};")
        assert 10**30 in code.atoms

    def test_atoms_interned(self):
        code = decoded_of('print("a"); print("a"); print("a");')
        assert code.atoms.count("a") == 1

    def test_int_and_float_atoms_distinct(self):
        code = decoded_of(f"var x = {2**40}; var y = {float(2**40)};")
        ints = [a for a in code.atoms if isinstance(a, int) and not isinstance(a, bool)]
        floats = [a for a in code.atoms if isinstance(a, float)]
        assert len(ints) == 1 and len(floats) == 1


class TestEncodingIntegrity:
    def test_lengths_partition_code(self):
        code = decoded_of("fn f(a) { return a * 2; } print(f(21));")
        assert sum(code.lengths) == len(code.code)

    def test_every_byte_reachable_by_decode(self):
        code = decoded_of("var s = 0; for i = 1, 3 { s = s + i; } print(s);")
        offset = 0
        count = 0
        while offset < len(code.code):
            op = code.code[offset]
            offset += 1 + operand_bytes(op)
            count += 1
        assert offset == len(code.code)
        assert count == len(code.decoded)

    def test_operand_round_trip_signed(self):
        code = decoded_of("var x = -120;")
        int8s = [(o, a) for o, a in code.decoded if o == JsOp.INT8]
        assert int8s == [(JsOp.INT8, -120)]


class TestJumpPatching:
    def test_ifeq_jumps_past_then_block(self):
        code = decoded_of("if (false) { print(1); } print(2);")
        for index, (op, arg) in enumerate(code.decoded):
            if op == JsOp.IFEQ:
                target_op = code.decoded[arg][0]
                # Lands after the then-block, not inside it.
                assert arg > index
                return
        pytest.fail("no IFEQ found")

    def test_while_goto_backwards(self):
        code = decoded_of("var i = 0; while (i < 2) { i = i + 1; }")
        gotos = [
            (index, arg)
            for index, (op, arg) in enumerate(code.decoded)
            if op == JsOp.GOTO
        ]
        assert any(arg < index for index, arg in gotos)

    def test_and_or_jump_targets_valid(self):
        code = decoded_of("var x = (1 and 2) or 3;")
        for op, arg in code.decoded:
            if op in (JsOp.AND, JsOp.OR):
                assert 0 <= arg < len(code.decoded)

    def test_break_targets_loop_end(self):
        source = "for i = 1, 10 { if (i == 2) { break; } } print(9);"
        assert JsVM.from_source(source).run() == ["9"]


class TestScopes:
    def test_block_locals_released(self):
        code = decoded_of(
            "fn f() { if (true) { var a = 1; } if (true) { var b = 2; } }",
            fn="f",
        )
        # a and b reuse the same slot; nlocals stays small.
        assert code.nlocals <= 1 or code.nlocals <= 2

    def test_for_loop_hidden_locals(self):
        code = decoded_of("fn f() { for i = 1, 3 { } }", fn="f")
        # visible var + limit + step.
        assert code.nlocals == 3

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(JsCompileError, match="duplicate"):
            compile_module_js(parse("fn f() { var a = 1; var a = 2; }"))


class TestErrors:
    def test_operand_required(self):
        from repro.vm.js.compiler import _JsFunctionCompiler

        compiler = _JsFunctionCompiler("t", [], False, set())
        with pytest.raises(JsCompileError, match="requires an operand"):
            compiler.emit(JsOp.GETLOCAL)

    def test_no_operand_allowed(self):
        from repro.vm.js.compiler import _JsFunctionCompiler

        compiler = _JsFunctionCompiler("t", [], False, set())
        with pytest.raises(JsCompileError, match="takes no operand"):
            compiler.emit(JsOp.POP, 3)

    def test_undefined_function_rejected(self):
        with pytest.raises(JsCompileError, match="undefined function"):
            compile_module_js(parse("ghost();"))

    def test_builtin_shadow_rejected(self):
        with pytest.raises(JsCompileError, match="shadows a builtin"):
            compile_module_js(parse("fn sqrt(x) { }"))
