"""Unit tests for the BTB with the SCD JTE overlay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.btb import BranchTargetBuffer


class TestBasicBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        assert btb.lookup(0x100) is None
        btb.insert(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_update_existing(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 0x500)
        btb.insert(0x100, 0x600)
        assert btb.lookup(0x100) == 0x600
        assert btb.btb_entry_count == 1

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(entries=4, ways=2, policy="lru")
        # Three PCs mapping to the same set (2 sets; word-aligned stride 8).
        pcs = [0x100, 0x108, 0x110]
        btb.insert(pcs[0], 1)
        btb.insert(pcs[1], 2)
        btb.lookup(pcs[0])  # make pcs[0] MRU
        btb.insert(pcs[2], 3)  # evicts pcs[1] (LRU)
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) == 3

    def test_fully_associative(self):
        btb = BranchTargetBuffer(entries=62, ways=62, policy="lru")
        for i in range(62):
            btb.insert(0x1000 + 4 * i, i)
        assert btb.btb_entry_count == 62
        btb.insert(0x9000, 99)
        assert btb.btb_entry_count == 62  # one got evicted

    def test_rr_policy_valid(self):
        btb = BranchTargetBuffer(entries=8, ways=2, policy="rr")
        for i in range(16):
            btb.insert(0x100 + 8 * i, i)
        assert btb.btb_entry_count <= 8

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, ways=4)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=0)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=8, ways=2, policy="plru")


class TestJteOverlay:
    def test_jte_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        assert btb.lookup_jte(13) is None
        btb.insert_jte(13, 0x7000)
        assert btb.lookup_jte(13) == 0x7000
        assert btb.jte_count == 1

    def test_jte_and_btb_namespaces_disjoint(self):
        # A JTE for opcode 64 must not answer a PC lookup for 64 and
        # vice versa (the J/B bit separates them).
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.insert_jte(64, 0x7000)
        assert btb.lookup(64) is None
        btb.insert(256, 0x9000)
        assert btb.lookup_jte(256 >> 2) != 0x9000 or True  # no cross-answer
        assert btb.lookup_jte(64) == 0x7000

    def test_branch_ids_separate_jtes(self):
        btb = BranchTargetBuffer(entries=64, ways=4)
        btb.insert_jte(5, 0x100, branch_id=0)
        btb.insert_jte(5, 0x200, branch_id=1)
        assert btb.lookup_jte(5, branch_id=0) == 0x100
        assert btb.lookup_jte(5, branch_id=1) == 0x200

    def test_jte_evicts_btb_entry(self):
        btb = BranchTargetBuffer(entries=2, ways=2)
        btb.insert(0x100, 1)
        btb.insert(0x104, 2)
        assert btb.btb_entry_count == 2
        btb.insert_jte(7, 0x700)
        assert btb.jte_count == 1
        assert btb.btb_entry_count == 1

    def test_btb_entry_cannot_evict_jte(self):
        btb = BranchTargetBuffer(entries=2, ways=2)
        btb.insert_jte(1, 0x100)
        btb.insert_jte(2, 0x200)
        assert btb.jte_count == 2
        assert not btb.insert(0x300, 3)  # all ways hold JTEs
        assert btb.lookup(0x300) is None
        assert btb.jte_count == 2

    def test_jte_update_in_place(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert_jte(3, 0x100)
        btb.insert_jte(3, 0x200)
        assert btb.jte_count == 1
        assert btb.lookup_jte(3) == 0x200

    def test_flush_jtes_keeps_btb_entries(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 1)
        btb.insert_jte(5, 0x500)
        flushed = btb.flush_jtes()
        assert flushed == 1
        assert btb.jte_count == 0
        assert btb.lookup_jte(5) is None
        assert btb.lookup(0x100) == 1

    def test_flush_all(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 1)
        btb.insert_jte(5, 0x500)
        btb.flush_all()
        assert btb.jte_count == 0
        assert btb.btb_entry_count == 0


class TestJteCap:
    def test_cap_limits_resident_jtes(self):
        btb = BranchTargetBuffer(entries=64, ways=2, jte_cap=4)
        for opcode in range(16):
            btb.insert_jte(opcode, 0x100 + opcode)
        assert btb.jte_count <= 4

    def test_cap_replacement_stays_in_set(self):
        btb = BranchTargetBuffer(entries=64, ways=2, jte_cap=2)
        btb.insert_jte(0, 0xA)
        btb.insert_jte(1, 0xB)
        # At cap: a new JTE for a set with no resident JTE is dropped.
        assert not btb.insert_jte(17, 0xC)
        assert btb.jte_count == 2
        # But a new JTE for set 0 may replace the JTE already there.
        assert btb.insert_jte(32, 0xD)  # 32 % 32 sets == set 0
        assert btb.jte_count == 2

    def test_cap_zero_disables_jtes(self):
        btb = BranchTargetBuffer(entries=8, ways=2, jte_cap=0)
        assert not btb.insert_jte(1, 0x100)
        assert btb.jte_count == 0

    def test_unbounded_by_default(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        for opcode in range(32):
            btb.insert_jte(opcode, opcode)
        assert btb.jte_count == 32


class TestOccupancy:
    def test_occupancy_snapshot(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 1)
        btb.insert_jte(2, 2)
        occ = btb.occupancy()
        assert occ == {"entries": 8, "jtes": 1, "btb_entries": 1}


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "insert_jte", "lookup", "lookup_jte", "flush"]),
            st.integers(0, 100),
        ),
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_jte_count_invariant(ops):
    """jte_count always equals the number of resident J/B=1 entries."""
    btb = BranchTargetBuffer(entries=16, ways=2, jte_cap=6)
    for action, value in ops:
        if action == "insert":
            btb.insert(value * 4, value)
        elif action == "insert_jte":
            btb.insert_jte(value, value)
        elif action == "lookup":
            btb.lookup(value * 4)
        elif action == "lookup_jte":
            btb.lookup_jte(value)
        else:
            btb.flush_jtes()
        actual = sum(
            1
            for ways in btb._sets
            for entry in ways
            if entry[0] and entry[1]
        )
        assert actual == btb.jte_count
        assert btb.jte_count <= 6
