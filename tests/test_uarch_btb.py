"""Unit tests for the BTB with the SCD JTE overlay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.btb import BranchTargetBuffer, MultiLevelBtb
from repro.uarch.config import BtbLevelConfig


class TestBasicBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        assert btb.lookup(0x100) is None
        btb.insert(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_update_existing(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 0x500)
        btb.insert(0x100, 0x600)
        assert btb.lookup(0x100) == 0x600
        assert btb.btb_entry_count == 1

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(entries=4, ways=2, policy="lru")
        # Three PCs mapping to the same set (2 sets; word-aligned stride 8).
        pcs = [0x100, 0x108, 0x110]
        btb.insert(pcs[0], 1)
        btb.insert(pcs[1], 2)
        btb.lookup(pcs[0])  # make pcs[0] MRU
        btb.insert(pcs[2], 3)  # evicts pcs[1] (LRU)
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) == 3

    def test_fully_associative(self):
        btb = BranchTargetBuffer(entries=62, ways=62, policy="lru")
        for i in range(62):
            btb.insert(0x1000 + 4 * i, i)
        assert btb.btb_entry_count == 62
        btb.insert(0x9000, 99)
        assert btb.btb_entry_count == 62  # one got evicted

    def test_rr_policy_valid(self):
        btb = BranchTargetBuffer(entries=8, ways=2, policy="rr")
        for i in range(16):
            btb.insert(0x100 + 8 * i, i)
        assert btb.btb_entry_count <= 8

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, ways=4)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=0)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=8, ways=2, policy="fifo")
        with pytest.raises(ValueError):
            # pLRU's binary tree needs a power-of-two way count.
            BranchTargetBuffer(entries=18, ways=3, policy="plru")
        with pytest.raises(ValueError):
            # XOR folding needs a power-of-two set count (6 sets here).
            BranchTargetBuffer(entries=12, ways=2, index="xor")
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=8, ways=2, index="hash")


class TestJteOverlay:
    def test_jte_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        assert btb.lookup_jte(13) is None
        btb.insert_jte(13, 0x7000)
        assert btb.lookup_jte(13) == 0x7000
        assert btb.jte_count == 1

    def test_jte_and_btb_namespaces_disjoint(self):
        # A JTE for opcode 64 must not answer a PC lookup for 64 and
        # vice versa (the J/B bit separates them).
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.insert_jte(64, 0x7000)
        assert btb.lookup(64) is None
        btb.insert(256, 0x9000)
        assert btb.lookup_jte(256 >> 2) != 0x9000 or True  # no cross-answer
        assert btb.lookup_jte(64) == 0x7000

    def test_branch_ids_separate_jtes(self):
        btb = BranchTargetBuffer(entries=64, ways=4)
        btb.insert_jte(5, 0x100, branch_id=0)
        btb.insert_jte(5, 0x200, branch_id=1)
        assert btb.lookup_jte(5, branch_id=0) == 0x100
        assert btb.lookup_jte(5, branch_id=1) == 0x200

    def test_jte_evicts_btb_entry(self):
        btb = BranchTargetBuffer(entries=2, ways=2)
        btb.insert(0x100, 1)
        btb.insert(0x104, 2)
        assert btb.btb_entry_count == 2
        btb.insert_jte(7, 0x700)
        assert btb.jte_count == 1
        assert btb.btb_entry_count == 1

    def test_btb_entry_cannot_evict_jte(self):
        btb = BranchTargetBuffer(entries=2, ways=2)
        btb.insert_jte(1, 0x100)
        btb.insert_jte(2, 0x200)
        assert btb.jte_count == 2
        assert not btb.insert(0x300, 3)  # all ways hold JTEs
        assert btb.lookup(0x300) is None
        assert btb.jte_count == 2

    def test_jte_update_in_place(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert_jte(3, 0x100)
        btb.insert_jte(3, 0x200)
        assert btb.jte_count == 1
        assert btb.lookup_jte(3) == 0x200

    def test_flush_jtes_keeps_btb_entries(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 1)
        btb.insert_jte(5, 0x500)
        flushed = btb.flush_jtes()
        assert flushed == 1
        assert btb.jte_count == 0
        assert btb.lookup_jte(5) is None
        assert btb.lookup(0x100) == 1

    def test_flush_all(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 1)
        btb.insert_jte(5, 0x500)
        btb.flush_all()
        assert btb.jte_count == 0
        assert btb.btb_entry_count == 0


class TestJteCap:
    def test_cap_limits_resident_jtes(self):
        btb = BranchTargetBuffer(entries=64, ways=2, jte_cap=4)
        for opcode in range(16):
            btb.insert_jte(opcode, 0x100 + opcode)
        assert btb.jte_count <= 4

    def test_cap_replacement_stays_in_set(self):
        btb = BranchTargetBuffer(entries=64, ways=2, jte_cap=2)
        btb.insert_jte(0, 0xA)
        btb.insert_jte(1, 0xB)
        # At cap: a new JTE for a set with no resident JTE is dropped.
        assert not btb.insert_jte(17, 0xC)
        assert btb.jte_count == 2
        # But a new JTE for set 0 may replace the JTE already there.
        assert btb.insert_jte(32, 0xD)  # 32 % 32 sets == set 0
        assert btb.jte_count == 2

    def test_cap_zero_disables_jtes(self):
        btb = BranchTargetBuffer(entries=8, ways=2, jte_cap=0)
        assert not btb.insert_jte(1, 0x100)
        assert btb.jte_count == 0

    def test_unbounded_by_default(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        for opcode in range(32):
            btb.insert_jte(opcode, opcode)
        assert btb.jte_count == 32


class TestOccupancy:
    def test_occupancy_snapshot(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        btb.insert(0x100, 1)
        btb.insert_jte(2, 2)
        occ = btb.occupancy()
        assert occ == {"entries": 8, "jtes": 1, "btb_entries": 1}


class TestRoundRobinDrift:
    """Regression for the RR pointer corruption fixed in this revision.

    The old ``_victim`` advanced ``_rr[set] = (_rr[set] + 1) % len(candidates)``
    and returned ``candidates[_rr[set]]`` — i.e. the pointer was an index
    into whatever candidate list the *current* insert happened to build.
    An at-cap JTE insert (candidate list = resident JTE ways only, often a
    single way) therefore clamped the pointer to near zero, and the next
    ordinary insert resumed rotation from the wrong physical way.
    """

    def _drifted_btb(self):
        # 4 sets x 4 ways; PCs 0x00..0x50 and opcodes 0/4 all map to set 0.
        btb = BranchTargetBuffer(entries=16, ways=4, policy="rr", jte_cap=1)
        for way, pc in enumerate((0x00, 0x10, 0x20, 0x30)):
            btb.insert(pc, 0x1000 + way)  # fills ways 0-3 via invalid scan
        btb.insert(0x40, 0x1004)      # rotates to way 1, evicts 0x10
        btb.insert_jte(0, 0xA)        # below cap: rotates to way 2
        btb.insert_jte(4, 0xB)        # at cap: may only replace the way-2 JTE
        return btb

    def test_at_cap_jte_insert_does_not_reset_pointer(self):
        btb = self._drifted_btb()
        assert btb._rr[0] == 2  # old code corrupted this to (2 + 1) % 1 == 0
        btb.check_invariants()

    def test_rotation_resumes_from_physical_way(self):
        btb = self._drifted_btb()
        # Next ordinary insert must rotate onward from way 2 and (skipping
        # nothing here) evict way 3.  The old code rotated the corrupted
        # pointer over candidates [0, 1, 3] and evicted way 1 — the entry
        # for 0x40 that round-robin order says is the youngest in the set.
        btb.insert(0x50, 0x1005)
        assert btb.lookup(0x40) == 0x1004
        assert btb.lookup(0x30) is None
        assert btb.lookup(0x50) == 0x1005
        btb.check_invariants()

    def test_pointer_always_physical(self):
        """Adversarial mix of at-cap JTE and ordinary inserts keeps every
        pointer inside the physical way range."""
        btb = BranchTargetBuffer(entries=8, ways=4, policy="rr", jte_cap=1)
        for i in range(64):
            btb.insert(i * 4, i)
            btb.insert_jte(i % 8, i)
            btb.check_invariants()


class TestPlru:
    def test_fill_then_evict_lru_way(self):
        btb = BranchTargetBuffer(entries=4, ways=4, policy="plru")
        pcs = (0x100, 0x104, 0x108, 0x10C)
        for i, pc in enumerate(pcs):
            btb.insert(pc, i)
        btb.insert(0x200, 99)  # way 0 (pcs[0]) is the tree's LRU leaf
        assert btb.lookup(pcs[0]) is None
        assert all(btb.lookup(pc) is not None for pc in pcs[1:])

    def test_touch_protects_on_hit(self):
        btb = BranchTargetBuffer(entries=4, ways=4, policy="plru")
        pcs = (0x100, 0x104, 0x108, 0x10C)
        for i, pc in enumerate(pcs):
            btb.insert(pc, i)
        btb.lookup(pcs[0])     # promote the would-be victim
        btb.insert(0x200, 99)  # tree now points into the other subtree
        assert btb.lookup(pcs[0]) == 0
        assert btb.lookup(pcs[2]) is None

    def test_victim_detours_around_jtes(self):
        btb = BranchTargetBuffer(entries=4, ways=4, policy="plru")
        btb.insert_jte(7, 0x700)           # occupies way 0
        for i, pc in enumerate((0x100, 0x104, 0x108)):
            btb.insert(pc, i)              # ways 1-3
        btb.insert(0x200, 99)              # LRU leaf is the JTE way: detour
        assert btb.lookup_jte(7) == 0x700
        assert btb.lookup(0x100) is None   # way 1, the detoured victim
        btb.check_invariants()


class TestXorIndex:
    def test_hit_and_miss(self):
        btb = BranchTargetBuffer(entries=16, ways=2, index="xor")
        btb.insert(0x1234, 0x9000)
        assert btb.lookup(0x1234) == 0x9000
        assert btb.lookup(0x1238) is None
        btb.insert_jte(42, 0x7000)
        assert btb.lookup_jte(42) == 0x7000

    def test_folding_changes_set_mapping(self):
        # Words 1 and 8 share set 1 under xor folding ((8 ^ 1) & 7) but
        # live in different sets under plain modulo.
        direct = BranchTargetBuffer(entries=8, ways=1, index="mod")
        hashed = BranchTargetBuffer(entries=8, ways=1, index="xor")
        for btb in (direct, hashed):
            btb.insert(1 << 2, 0xA)
            btb.insert(8 << 2, 0xB)
        assert direct.lookup(1 << 2) == 0xA
        assert hashed.lookup(1 << 2) is None  # evicted by the conflicting insert
        assert hashed.lookup(8 << 2) == 0xB


class TestInstallBlocked:
    def test_blocked_inserts_counted(self):
        btb = BranchTargetBuffer(entries=2, ways=2)
        btb.insert_jte(1, 0x100)
        btb.insert_jte(2, 0x200)
        assert btb.install_blocked == 0
        assert not btb.insert(0x300, 3)
        assert not btb.insert(0x304, 4)
        assert btb.install_blocked == 2
        btb.flush_jtes()
        assert btb.insert(0x300, 3)
        assert btb.install_blocked == 2


class TestDigestRestore:
    def _populated(self, **kwargs):
        btb = BranchTargetBuffer(entries=16, ways=4, policy="rr", jte_cap=3,
                                 **kwargs)
        for i in range(12):
            btb.insert(i * 4, i)
        for opcode in range(5):
            btb.insert_jte(opcode, 0x700 + opcode)
        return btb

    def test_round_trip(self):
        btb = self._populated()
        digest = btb.state_digest()
        fresh = BranchTargetBuffer(entries=16, ways=4, policy="rr", jte_cap=3)
        fresh.restore_state(digest)
        assert fresh.state_digest() == digest
        assert fresh.jte_count == btb.jte_count
        fresh.check_invariants()
        # Future behaviour matches: same insert lands on the same victim.
        btb.insert(0x80, 0xAA)
        fresh.insert(0x80, 0xAA)
        assert fresh.state_digest() == btb.state_digest()

    def test_geometry_mismatch_rejected(self):
        digest = self._populated().state_digest()
        bigger = BranchTargetBuffer(entries=32, ways=4)
        with pytest.raises(ValueError):
            bigger.restore_state(digest)
        # Same entry count, different associativity: the rr/plru vectors
        # no longer fit the set count.
        reshaped = BranchTargetBuffer(entries=16, ways=2)
        with pytest.raises(ValueError):
            reshaped.restore_state(digest)

    def test_legacy_flat_digest_rejected(self):
        """The pre-revision digest (a bare tuple of entries, no rr/plru
        state) must be rejected, not silently misinterpreted."""
        btb = self._populated()
        legacy = btb.state_digest()[0]
        fresh = BranchTargetBuffer(entries=16, ways=4)
        with pytest.raises(ValueError):
            fresh.restore_state(legacy)

    def test_corrupt_replacement_state_rejected(self):
        btb = self._populated()
        entries, rr, plru = btb.state_digest()
        fresh = BranchTargetBuffer(entries=16, ways=4, policy="rr")
        with pytest.raises(ValueError):
            fresh.restore_state((entries, (9,) * len(rr), plru))
        with pytest.raises(ValueError):
            fresh.restore_state((entries, rr, (1 << 8,) * len(plru)))
        with pytest.raises(ValueError):
            fresh.restore_state((entries[:-1], rr, plru))


class TestMultiLevel:
    def _levels(self, main_entries=64, main_ways=4, policy="plru", index="xor"):
        return (
            BtbLevelConfig(entries=8, ways=2, policy="lru", index="mod",
                           latency=0),
            BtbLevelConfig(entries=main_entries, ways=main_ways, policy=policy,
                           index=index, latency=2),
        )

    def test_main_hit_fills_nano(self):
        btb = MultiLevelBtb(self._levels())
        btb.insert(0x100, 0x9000)
        assert btb.nano.lookup(0x100) is None  # inserts go to main only
        assert btb.lookup(0x100) == 0x9000
        assert btb.hit_level == 1
        assert btb.lookup(0x100) == 0x9000     # now answered by the nano fill
        assert btb.hit_level == 0
        assert btb.level_hits == [1, 1]

    def test_miss_sets_hit_level(self):
        btb = MultiLevelBtb(self._levels())
        assert btb.lookup(0x100) is None
        assert btb.hit_level == -1

    def test_insert_refreshes_stale_nano_copy(self):
        btb = MultiLevelBtb(self._levels())
        btb.insert(0x100, 0x9000)
        btb.lookup(0x100)              # promote into the nano level
        btb.insert(0x100, 0x9004)      # retarget: both levels must agree
        assert btb.nano.lookup(0x100) == 0x9004
        assert btb.main.lookup(0x100) == 0x9004

    def test_jtes_live_in_main_only(self):
        btb = MultiLevelBtb(self._levels(), jte_cap=2)
        btb.insert_jte(3, 0x700)
        assert btb.lookup_jte(3) == 0x700
        assert btb.hit_level == 1
        assert btb.nano.jte_count == 0
        assert btb.jte_count == 1
        btb.insert_jte(4, 0x704)
        assert not btb.insert_jte(5, 0x708)  # at cap, set 5 holds no JTE
        assert btb.jte_count == 2
        assert btb.flush_jtes() == 2
        assert btb.jte_count == 0
        btb.check_invariants()

    def test_digest_round_trip(self):
        levels = self._levels()
        btb = MultiLevelBtb(levels, jte_cap=4)
        for i in range(20):
            btb.insert(i * 4, i)
            btb.lookup(i * 4)
        for opcode in range(6):
            btb.insert_jte(opcode, 0x700 + opcode)
        digest = btb.state_digest()
        fresh = MultiLevelBtb(levels, jte_cap=4)
        fresh.restore_state(digest)
        assert fresh.state_digest() == digest
        fresh.check_invariants()

    def test_digest_level_mismatch_rejected(self):
        btb = MultiLevelBtb(self._levels())
        flat = BranchTargetBuffer(entries=64, ways=4)
        with pytest.raises(ValueError):
            btb.restore_state(flat.state_digest())
        other = MultiLevelBtb(self._levels(main_entries=128))
        with pytest.raises(ValueError):
            other.restore_state(btb.state_digest())

    def test_two_levels_required(self):
        with pytest.raises(ValueError):
            MultiLevelBtb(self._levels()[:1])


POLICIES = ("lru", "rr", "plru")


@st.composite
def _btb_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["insert", "insert_jte", "lookup", "lookup_jte", "flush"]
                ),
                st.integers(0, 60),
            ),
            max_size=120,
        )
    )


def _apply(btb, action, value):
    if action == "insert":
        btb.insert(value * 4, value)
    elif action == "insert_jte":
        btb.insert_jte(value, value, branch_id=value % 3)
    elif action == "lookup":
        btb.lookup(value * 4)
    elif action == "lookup_jte":
        btb.lookup_jte(value, branch_id=value % 3)
    else:
        btb.flush_jtes()


@given(
    policy=st.sampled_from(POLICIES),
    cap=st.sampled_from([None, 0, 2, 6]),
    index=st.sampled_from(["mod", "xor"]),
    ops=_btb_ops(),
)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_policy_invariants_and_digest_round_trip(policy, cap, index, ops):
    """Every policy/cap/index combination keeps structural invariants
    through mixed insert/JTE/flush streams, and its digest restores into a
    behaviourally identical fresh buffer (derandomized for CI)."""
    make = lambda: BranchTargetBuffer(  # noqa: E731
        entries=16, ways=4, policy=policy, jte_cap=cap, index=index
    )
    btb = make()
    for action, value in ops:
        _apply(btb, action, value)
        btb.check_invariants()
    digest = btb.state_digest()
    fresh = make()
    fresh.restore_state(digest)
    fresh.check_invariants()
    assert fresh.state_digest() == digest
    assert fresh.jte_count == btb.jte_count
    # The clone's future replacement decisions track the original's.
    for action, value in ops[:20]:
        _apply(btb, action, value)
        _apply(fresh, action, value)
    assert fresh.state_digest() == btb.state_digest()


@given(ops=_btb_ops())
@settings(max_examples=40, deadline=None, derandomize=True)
def test_multilevel_invariants_and_digest_round_trip(ops):
    levels = (
        BtbLevelConfig(entries=8, ways=2, policy="lru", index="mod"),
        BtbLevelConfig(entries=32, ways=4, policy="plru", index="xor",
                       latency=2),
    )
    btb = MultiLevelBtb(levels, jte_cap=4)
    for action, value in ops:
        _apply(btb, action, value)
        btb.check_invariants()
    digest = btb.state_digest()
    fresh = MultiLevelBtb(levels, jte_cap=4)
    fresh.restore_state(digest)
    fresh.check_invariants()
    assert fresh.state_digest() == digest


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "insert_jte", "lookup", "lookup_jte", "flush"]),
            st.integers(0, 100),
        ),
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_jte_count_invariant(ops):
    """jte_count always equals the number of resident J/B=1 entries."""
    btb = BranchTargetBuffer(entries=16, ways=2, jte_cap=6)
    for action, value in ops:
        if action == "insert":
            btb.insert(value * 4, value)
        elif action == "insert_jte":
            btb.insert_jte(value, value)
        elif action == "lookup":
            btb.lookup(value * 4)
        elif action == "lookup_jte":
            btb.lookup_jte(value)
        else:
            btb.flush_jtes()
        actual = sum(
            1
            for ways in btb._sets
            for entry in ways
            if entry[0] and entry[1]
        )
        assert actual == btb.jte_count
        assert btb.jte_count <= 6
