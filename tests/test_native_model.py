"""Integration tests for the native interpreter model and event replay."""

import pytest

from repro.native.model import (
    DISPATCH_STRATEGIES,
    ModelRunner,
    NativeInterpreterModel,
    get_model,
)
from repro.uarch import Machine, cortex_a5, rocket
from repro.vm.js import JsVM
from repro.vm.lua import LuaVM, Op
from repro.vm.trace import Site

SIMPLE = "var s = 0; for i = 1, 30 { s = s + i; } print(s);"
CALLS = "fn f(n) { if (n < 2) { return n; } return f(n-1) + f(n-2); } print(f(10));"


def replay(vm_kind, strategy, source, config=None):
    model = get_model(vm_kind, strategy)
    machine = Machine(config or cortex_a5())
    runner = ModelRunner(model, machine)
    runner.start()
    vm = (LuaVM if vm_kind == "lua" else JsVM).from_source(source)
    output = vm.run(trace=runner.on_event)
    runner.finish()
    return vm, machine, machine.finalize(), output


class TestModelConstruction:
    @pytest.mark.parametrize("vm_kind", ["lua", "js"])
    @pytest.mark.parametrize("strategy", DISPATCH_STRATEGIES)
    def test_builds(self, vm_kind, strategy):
        model = get_model(vm_kind, strategy)
        assert model.code_size_bytes > 4096
        n_ops = 47 if vm_kind == "lua" else 229
        assert len(model.handlers) == n_ops

    def test_lua_single_site(self):
        model = get_model("lua", "baseline")
        assert set(model.dispatchers) == {0}
        assert model.covered_sites == {0}

    def test_js_four_sites_three_covered(self):
        model = get_model("js", "scd")
        assert set(model.dispatchers) == {0, 1, 2, 3}
        assert model.covered_sites == {0, 1, 2}
        assert model.dispatchers[0].scd
        assert not model.dispatchers[int(Site.UNCOVERED)].scd

    def test_masks(self):
        assert get_model("lua", "scd").opcode_mask == 0x3F
        assert get_model("js", "scd").opcode_mask == 0xFF

    def test_threaded_bigger_than_baseline(self):
        for vm_kind in ("lua", "js"):
            assert (
                get_model(vm_kind, "threaded").code_size_bytes
                > get_model(vm_kind, "baseline").code_size_bytes
            )

    def test_handler_kinds(self):
        model = get_model("lua", "baseline")
        assert model.handlers[Op.ADD].kind == "plain"
        assert model.handlers[Op.LT].kind == "branchy"
        assert model.handlers[Op.CONCAT].kind == "workloop"
        assert model.handlers[Op.CALL].kind == "callout"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            NativeInterpreterModel("python", "baseline")
        with pytest.raises(ValueError):
            NativeInterpreterModel("lua", "turbo")

    def test_model_cache_returns_same_object(self):
        assert get_model("lua", "scd") is get_model("lua", "scd")


class TestReplayBasics:
    @pytest.mark.parametrize("vm_kind", ["lua", "js"])
    @pytest.mark.parametrize("strategy", DISPATCH_STRATEGIES)
    def test_replay_runs_and_counts(self, vm_kind, strategy):
        vm, _machine, stats, output = replay(vm_kind, strategy, SIMPLE)
        assert output == ["465"]
        assert stats.instructions > vm.steps * 10  # many host insts per step
        assert stats.cycles >= stats.instructions

    def test_functional_result_independent_of_strategy(self):
        outputs = {
            strategy: replay("lua", strategy, CALLS)[3][0]
            for strategy in DISPATCH_STRATEGIES
        }
        assert set(outputs.values()) == {"55"}

    def test_dispatch_category_populated(self):
        _vm, _machine, stats, _out = replay("lua", "baseline", SIMPLE)
        assert stats.insts_by_category["dispatch"] > 0
        assert stats.insts_by_category["handler"] > 0

    def test_builtin_category_populated(self):
        _vm, _machine, stats, _out = replay("lua", "baseline", 'print("x");')
        assert stats.insts_by_category["builtin"] > 0


class TestScdReplay:
    def test_bop_hits_dominate_after_warmup(self):
        _vm, machine, stats, _out = replay("lua", "scd", SIMPLE)
        assert stats.bop_hits > stats.bop_misses * 5
        assert stats.jte_inserts == stats.bop_misses

    def test_jtes_resident_during_run_flushed_at_exit(self):
        model = get_model("lua", "scd")
        machine = Machine(cortex_a5())
        runner = ModelRunner(model, machine)
        runner.start()
        vm = LuaVM.from_source(SIMPLE)
        vm.run(trace=runner.on_event)
        assert machine.btb.jte_count > 0
        runner.finish()
        assert machine.btb.jte_count == 0

    def test_scd_reduces_instructions(self):
        _vm, _m, base, _o = replay("lua", "baseline", SIMPLE)
        _vm, _m, scd, _o = replay("lua", "scd", SIMPLE)
        assert scd.instructions < base.instructions * 0.95

    def test_scd_reduces_dispatch_mispredicts(self):
        _vm, _m, base, _o = replay("lua", "baseline", SIMPLE)
        _vm, _m, scd, _o = replay("lua", "scd", SIMPLE)
        assert (
            scd.mispredicts_by_category.get("dispatch_jump", 0)
            < base.mispredicts_by_category.get("dispatch_jump", 1)
        )

    def test_js_uncovered_sites_bypass_scd(self):
        source = "var a = [1, 2, 3]; a[0] = a[1] + a[2]; print(a[0]);"
        _vm, _machine, stats, _out = replay("js", "scd", source)
        # Array construction dispatches through the uncovered path: those
        # events must not produce bop activity.
        assert stats.bop_misses + stats.bop_hits < _vm.steps

    def test_context_switch_interval_causes_flushes(self):
        model = get_model("lua", "scd")
        machine = Machine(cortex_a5())
        runner = ModelRunner(model, machine, context_switch_interval=50)
        runner.start()
        vm = LuaVM.from_source(SIMPLE)
        vm.run(trace=runner.on_event)
        runner.finish()
        assert machine.stats.jte_flushes > 2

    def test_stall_cycles_accumulate(self):
        _vm, _machine, stats, _out = replay("lua", "scd", SIMPLE)
        assert stats.scd_stall_cycles > 0


class TestThreadedReplay:
    def test_threaded_reduces_instructions(self):
        _vm, _m, base, _o = replay("lua", "baseline", SIMPLE)
        _vm, _m, threaded, _o = replay("lua", "threaded", SIMPLE)
        assert threaded.instructions < base.instructions

    def test_threaded_reduces_dispatch_mispredicts(self):
        _vm, _m, base, _o = replay("lua", "baseline", SIMPLE)
        _vm, _m, threaded, _o = replay("lua", "threaded", SIMPLE)
        assert (
            threaded.mispredicts_by_category["dispatch_jump"]
            < base.mispredicts_by_category["dispatch_jump"]
        )

    def test_threaded_dispatch_fraction_lower(self):
        _vm, _m, base, _o = replay("lua", "baseline", SIMPLE)
        _vm, _m, threaded, _o = replay("lua", "threaded", SIMPLE)
        assert threaded.dispatch_fraction() < base.dispatch_fraction()


class TestVbbiReplay:
    def test_vbbi_removes_most_dispatch_mispredicts(self):
        config = cortex_a5().with_changes(indirect_scheme="vbbi")
        _vm, _m, base, _o = replay("lua", "baseline", SIMPLE)
        _vm, _m, vbbi, _o = replay("lua", "baseline", SIMPLE, config=config)
        assert (
            vbbi.mispredicts_by_category["dispatch_jump"]
            < base.mispredicts_by_category["dispatch_jump"] * 0.2
        )
        # VBBI does NOT reduce instruction count (the paper's key point).
        assert vbbi.instructions == base.instructions


class TestRocketReplay:
    def test_runs_on_rocket_config(self):
        _vm, _machine, stats, output = replay("lua", "scd", SIMPLE, config=rocket())
        assert output == ["465"]
        assert stats.bop_hits > 0
