"""Unit tests for the scriptlet parser."""

import pytest

from repro.lang import ast, parse
from repro.lang.parser import ParseError


def first_stmt(source):
    return parse(source).body[0]


def expr_of(source):
    node = first_stmt(source)
    assert isinstance(node, ast.ExprStmt)
    return node.expr


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = expr_of("1 + 2 * 3;")
        assert isinstance(node, ast.BinOp) and node.op == "+"
        assert isinstance(node.right, ast.BinOp) and node.right.op == "*"

    def test_parentheses(self):
        node = expr_of("(1 + 2) * 3;")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_comparison_binds_looser_than_concat(self):
        node = expr_of('"a" .. "b" == "ab";')
        assert node.op == "=="
        assert isinstance(node.left, ast.BinOp) and node.left.op == ".."

    def test_concat_right_associative(self):
        node = expr_of('"a" .. "b" .. "c";')
        assert node.op == ".."
        assert isinstance(node.right, ast.BinOp) and node.right.op == ".."

    def test_unary_minus_folds_literal(self):
        node = expr_of("-5;")
        assert isinstance(node, ast.Literal) and node.value == -5

    def test_unary_minus_on_expr(self):
        node = expr_of("-x;")
        assert isinstance(node, ast.UnOp) and node.op == "-"

    def test_not_and_or_precedence(self):
        node = expr_of("not a and b or c;")
        assert isinstance(node, ast.Logical) and node.op == "or"
        assert node.left.op == "and"
        assert isinstance(node.left.left, ast.UnOp)

    def test_call_with_args(self):
        node = expr_of("f(1, x, g());")
        assert isinstance(node, ast.Call)
        assert node.callee == "f"
        assert len(node.args) == 3
        assert isinstance(node.args[2], ast.Call)

    def test_indexing_chains(self):
        node = expr_of("a[1][2];")
        assert isinstance(node, ast.Index)
        assert isinstance(node.obj, ast.Index)

    def test_array_literal(self):
        node = expr_of("[1, 2, 3];")
        assert isinstance(node, ast.ArrayLit)
        assert len(node.items) == 3

    def test_empty_array(self):
        node = expr_of("[];")
        assert node.items == []

    def test_map_literal_name_keys(self):
        node = expr_of("{a: 1, b: 2};")
        assert isinstance(node, ast.MapLit)
        assert node.pairs[0][0].value == "a"

    def test_map_literal_computed_key(self):
        node = expr_of("{[x + 1]: 2};")
        assert isinstance(node.pairs[0][0], ast.BinOp)

    def test_literals(self):
        assert expr_of("true;").value is True
        assert expr_of("false;").value is False
        assert expr_of("nil;").value is None
        assert expr_of('"s";').value == "s"


class TestStatements:
    def test_var_decl(self):
        node = first_stmt("var x = 1;")
        assert isinstance(node, ast.VarDecl)
        assert node.name == "x"

    def test_assignment_to_name(self):
        node = first_stmt("x = 1;")
        assert isinstance(node, ast.Assign)
        assert isinstance(node.target, ast.Name)

    def test_assignment_to_index(self):
        node = first_stmt("a[0] = 1;")
        assert isinstance(node.target, ast.Index)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse("1 + 2 = 3;")

    def test_if_else_chain(self):
        node = first_stmt("if (a) { } else if (b) { } else { }")
        assert isinstance(node, ast.If)
        assert isinstance(node.orelse, ast.If)
        assert isinstance(node.orelse.orelse, ast.Block)

    def test_while(self):
        node = first_stmt("while (x < 3) { x = x + 1; }")
        assert isinstance(node, ast.While)
        assert len(node.body.statements) == 1

    def test_for_default_step(self):
        node = first_stmt("for i = 1, 10 { }")
        assert isinstance(node, ast.ForNum)
        assert node.step is None

    def test_for_explicit_step(self):
        node = first_stmt("for i = 10, 1, -2 { }")
        assert isinstance(node.step, ast.Literal)
        assert node.step.value == -2

    def test_return_with_and_without_value(self):
        module = parse("fn f() { return; } fn g() { return 1; }")
        f, g = module.functions()
        assert f.body.statements[0].value is None
        assert g.body.statements[0].value.value == 1

    def test_break_continue(self):
        module = parse("while (true) { break; continue; }")
        body = module.body[0].body.statements
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("var x = 1")


class TestFunctions:
    def test_funcdecl(self):
        module = parse("fn add(a, b) { return a + b; }")
        fn = module.functions()[0]
        assert fn.name == "add"
        assert fn.params == ["a", "b"]

    def test_no_params(self):
        fn = parse("fn f() { }").functions()[0]
        assert fn.params == []

    def test_duplicate_params_rejected(self):
        with pytest.raises(ParseError, match="duplicate parameter"):
            parse("fn f(a, a) { }")

    def test_nested_fn_rejected(self):
        with pytest.raises(ParseError, match="nested function"):
            parse("fn f() { fn g() { } }")

    def test_module_partition(self):
        module = parse("fn f() { } var x = 1; fn g() { }")
        assert len(module.functions()) == 2
        assert len(module.top_level()) == 1


class TestWalk:
    def test_walk_visits_all(self):
        module = parse("fn f(a) { return a + 1; } print(f(2));")
        names = [n for n in ast.walk(module) if isinstance(n, ast.Name)]
        assert any(n.id == "a" for n in names)
        calls = [n for n in ast.walk(module) if isinstance(n, ast.Call)]
        assert {c.callee for c in calls} == {"print", "f"}

    def test_walk_visits_map_pairs(self):
        module = parse("var m = {a: g()};")
        calls = [n for n in ast.walk(module) if isinstance(n, ast.Call)]
        assert calls and calls[0].callee == "g"


class TestErrors:
    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated block"):
            parse("fn f() { var x = 1;")

    def test_unexpected_token(self):
        with pytest.raises(ParseError, match="unexpected token"):
            parse("var x = ;")

    def test_error_reports_line(self):
        try:
            parse("var x = 1;\nvar y = ;")
        except ParseError as err:
            assert err.line == 2
        else:
            pytest.fail("expected ParseError")

    def test_bad_map_key(self):
        with pytest.raises(ParseError, match="bad map key"):
            parse("var m = {1: 2};")
