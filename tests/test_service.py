"""Sweep-as-a-service: protocol, dedup scheduler, server admission.

The load-bearing property is the dedup invariant: at any instant each
distinct cache key has at most one backend flight, and its result feeds
every waiter — N overlapping sweeps cost the union of their unique grid
points, not the sum.  The scheduler tests prove it deterministically
(two submissions landing in the same event-loop tick); the end-to-end
test proves it over real sockets with a merged trace, counting actual
backend simulations the same way CI's service-smoke job does.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import obs
from repro.harness.cache import ResultCache
from repro.harness.parallel import SimJob, run_jobs
from repro.obs.schema import validate_file
from repro.service import protocol
from repro.service.client import SweepClient, SweepRejected
from repro.service.scheduler import Rejected, SweepScheduler
from repro.service.server import run_service

KW = {"check_output": False, "n": 8}

#: 4-job grid A and a 50%-overlapping grid B: union is 6 unique keys.
GRID_A = {
    "workloads": ["fibo", "n-sieve"],
    "vms": ["lua"],
    "schemes": ["baseline", "scd"],
    "kwargs": KW,
}
GRID_B = {
    "workloads": ["fibo", "spectral-norm"],
    "vms": ["lua"],
    "schemes": ["baseline", "scd"],
    "kwargs": KW,
}


def jobs_of(grid: dict) -> list[SimJob]:
    return [protocol.job_from_entry(e) for e in protocol.expand_grid(grid)]


def union_keys(*grids: dict) -> set[str]:
    return {
        job.cache_key() for grid in grids for job in jobs_of(grid)
    }


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"type": "ping", "nested": {"a": [1, 2]}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")  # not an object
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(json.dumps({"no": "type"}).encode() + b"\n")

    def test_job_from_entry_builds_simjob(self):
        job = protocol.job_from_entry(
            {"workload": "fibo", "vm": "lua", "scheme": "scd", "kwargs": KW}
        )
        assert job == SimJob(
            "fibo", "lua", "scd",
            kwargs=tuple(sorted(KW.items())),
        )

    def test_job_from_entry_default_machine_aliases_cache_key(self):
        # "cortex-a5" must map to config=None so the service-built job
        # shares cache entries with locally-run default-machine sweeps.
        named = protocol.job_from_entry(
            {"workload": "fibo", "vm": "lua", "scheme": "scd",
             "machine": "cortex-a5"}
        )
        implicit = protocol.job_from_entry(
            {"workload": "fibo", "vm": "lua", "scheme": "scd"}
        )
        assert named.cache_key() == implicit.cache_key()

    @pytest.mark.parametrize(
        "entry",
        [
            {"workload": "no-such-workload", "vm": "lua", "scheme": "scd"},
            {"workload": "fibo", "vm": "no-such-vm", "scheme": "scd"},
            {"workload": "fibo", "vm": "lua", "scheme": "no-such-scheme"},
            {"workload": "fibo", "vm": "lua", "scheme": "scd",
             "machine": "no-such-machine"},
            {"workload": "fibo", "vm": "lua", "scheme": "scd",
             "kwargs": "not-a-dict"},
            "not-a-dict",
        ],
    )
    def test_job_from_entry_rejects_bad_entries(self, entry):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.job_from_entry(entry)
        assert err.value.code == protocol.REJECT_BAD_REQUEST

    def test_expand_grid_is_full_cross_product(self):
        entries = protocol.expand_grid(GRID_A)
        assert len(entries) == 4
        assert {(e["workload"], e["scheme"]) for e in entries} == {
            ("fibo", "baseline"), ("fibo", "scd"),
            ("n-sieve", "baseline"), ("n-sieve", "scd"),
        }

    def test_parse_submit_needs_exactly_one_payload(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit({"type": "submit"})
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit(
                {"type": "submit", "jobs": [], "grid": GRID_A}
            )
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit({"type": "submit", "jobs": []})


class TestSchedulerDedup:
    """Deterministic dedup proofs: submissions land in the same tick."""

    def _run(self, coro):
        return asyncio.run(coro)

    def test_same_tick_overlap_joins_flights(self, tmp_path):
        cache = ResultCache("svc", root=tmp_path)

        async def scenario():
            scheduler = SweepScheduler(workers=1, cache=cache)
            await scheduler.start()
            try:
                # No await between the submits: request B *must* find
                # request A's flights still queued and join them.
                req_a = scheduler.submit(jobs_of(GRID_A), client="a")
                req_b = scheduler.submit(jobs_of(GRID_B), client="b")
                assert req_a.unique == 4 and req_a.deduped == 0
                assert req_b.unique == 2 and req_b.deduped == 2
                assert scheduler.pending_flights() == len(
                    union_keys(GRID_A, GRID_B)
                )
                await asyncio.gather(
                    self._drain_events(req_a), self._drain_events(req_b)
                )
            finally:
                await scheduler.stop()
            return scheduler, req_a, req_b

        scheduler, req_a, req_b = self._run(scenario())
        assert req_a.ok == 4 and req_a.failed == 0
        assert req_b.ok == 4 and req_b.failed == 0
        assert scheduler.jobs_deduped == 2
        # The backend saw exactly the union: 6 simulations, 0 cache hits.
        assert scheduler.metrics.sims == 6
        assert scheduler.metrics.cache_hits == 0
        # Every waiter of a shared flight got the identical object.
        shared = [
            (ia, ib)
            for ia, ja in enumerate(jobs_of(GRID_A))
            for ib, jb in enumerate(jobs_of(GRID_B))
            if ja.cache_key() == jb.cache_key()
        ]
        assert len(shared) == 2
        for ia, ib in shared:
            assert req_a.results[ia] == req_b.results[ib]

    def test_results_match_clean_serial_run(self, tmp_path):
        cache = ResultCache("svc", root=tmp_path / "svc")

        async def scenario():
            scheduler = SweepScheduler(workers=1, cache=cache)
            await scheduler.start()
            try:
                request = scheduler.submit(jobs_of(GRID_A), client="a")
                await self._drain_events(request)
            finally:
                await scheduler.stop()
            return request

        request = self._run(scenario())
        serial = run_jobs(
            jobs_of(GRID_A), workers=1,
            cache=ResultCache("serial", root=tmp_path / "serial"),
        )
        assert request.results == serial

    def test_failed_flight_fails_every_waiter(self, tmp_path):
        # Bypass protocol validation on purpose: a job whose workload
        # does not exist fails in the backend, and that failure must
        # reach both requests waiting on the shared key.
        bad = SimJob("no-such-workload", "lua", "scd")
        cache = ResultCache("svc", root=tmp_path)

        async def scenario():
            scheduler = SweepScheduler(workers=1, cache=cache, retries=0)
            await scheduler.start()
            try:
                req_a = scheduler.submit([bad], client="a")
                req_b = scheduler.submit([bad], client="b")
                events = await asyncio.gather(
                    self._drain_events(req_a), self._drain_events(req_b)
                )
            finally:
                await scheduler.stop()
            return req_a, req_b, events

        req_a, req_b, events = self._run(scenario())
        assert req_a.failed == 1 and req_b.failed == 1
        for stream in events:
            (job_event,) = [e for e in stream if e["type"] == "job"]
            assert job_event["ok"] is False
            assert job_event["detail"]

    def test_queue_full_refuses_before_mutating(self, tmp_path):
        cache = ResultCache("svc", root=tmp_path)
        scheduler = SweepScheduler(
            workers=1, cache=cache, queue_depth=2
        )
        # submit() needs no running loop until a drain wake-up matters,
        # so admission logic is testable synchronously.
        jobs = jobs_of(GRID_A)  # 4 unique keys > depth 2
        with pytest.raises(Rejected) as err:
            scheduler.submit(jobs, client="greedy")
        assert err.value.code == protocol.REJECT_QUEUE_FULL
        # The refused submission left no partial state behind.
        assert scheduler.pending_flights() == 0
        assert scheduler.requests == 0 and scheduler.jobs_submitted == 0

    def test_dedup_join_is_never_refused(self, tmp_path):
        cache = ResultCache("svc", root=tmp_path)
        scheduler = SweepScheduler(workers=1, cache=cache, queue_depth=1)
        job = jobs_of(GRID_A)[0]
        scheduler.submit([job], client="first")  # fills the queue
        # Same key again: zero new unique work, admitted at full depth.
        request = scheduler.submit([job], client="second")
        assert request.deduped == 1 and request.unique == 0
        assert scheduler.pending_flights() == 1

    @staticmethod
    async def _drain_events(request) -> list[dict]:
        events = []
        while True:
            event = await request.events.get()
            if event is None:
                return events
            events.append(event)


class _Server:
    """A real served instance on an ephemeral port, for socket tests."""

    def __init__(self, tmp_path, **kwargs):
        self.cache = ResultCache("svc", root=tmp_path / "svc-cache")
        self._ready = threading.Event()
        self._addr = None
        kwargs.setdefault("workers", 1)
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                run_service(
                    port=0, cache=self.cache, ready=self._set_addr,
                    **kwargs,
                )
            ),
            daemon=True,
        )
        self._thread.start()
        assert self._ready.wait(20), "service did not come up"

    def _set_addr(self, addr):
        self._addr = addr
        self._ready.set()

    def client(self, **kwargs) -> SweepClient:
        host, port = self._addr
        return SweepClient(host, port, **kwargs)

    def stop(self):
        with self.client() as c:
            c.shutdown()
        self._thread.join(20)
        assert not self._thread.is_alive(), "service did not shut down"


class TestServiceEndToEnd:
    """Socket-level tests against a real served instance."""

    def test_dedup_proof_two_concurrent_clients(self, tmp_path):
        """The acceptance criterion, end to end.

        Cold cache, two concurrent clients, 50% grid overlap: the
        merged trace must show exactly ``len(union)`` backend
        simulations (non-cached ``job`` spans and results-store cache
        puts), and each client's results must be byte-identical to a
        clean serial ``run_jobs`` of its own grid.
        """
        trace = tmp_path / "trace.jsonl"
        obs.configure(trace)
        try:
            server = _Server(tmp_path)
            outcomes = {}

            def submit(name, grid, delay):
                # Stagger B slightly so A's accept usually lands first;
                # the union invariant holds for any interleaving (an
                # overlap key is either joined in flight or served from
                # the result cache — never re-simulated).
                if delay:
                    threading.Event().wait(delay)
                with server.client() as client:
                    outcomes[name] = client.submit(grid=grid)

            threads = [
                threading.Thread(target=submit, args=("a", GRID_A, 0)),
                threading.Thread(target=submit, args=("b", GRID_B, 0.1)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            server.stop()
        finally:
            obs.close()

        union = union_keys(GRID_A, GRID_B)
        assert len(union) == 6

        for name, grid in (("a", GRID_A), ("b", GRID_B)):
            outcome = outcomes[name]
            assert outcome.ok, outcome.failures()
            serial = run_jobs(
                jobs_of(grid), workers=1,
                cache=ResultCache("serial", root=tmp_path / "serial"),
            )
            assert outcome.results == serial
            # Byte-identity survives the JSON wire round-trip.
            assert [r.to_dict() for r in outcome.results] == [
                r.to_dict() for r in serial
            ]

        # Overlap accounting: the 2 shared keys were paid for once;
        # whoever arrived second saw them as deduped or cache-hits.
        second_hand = sum(
            outcomes[n].done["deduped"] + outcomes[n].done["cached"]
            for n in ("a", "b")
        )
        assert second_hand == 2

        log = validate_file(trace)
        assert log.ok, log.errors
        simulated = [
            s for s in log.by_name("job")
            if s.attrs.get("cached") is False
        ]
        puts = [
            s for s in log.by_name("cache")
            if s.attrs.get("op") == "put"
            and s.attrs.get("store") == "results"
        ]
        assert len(simulated) == len(union)
        assert len(puts) == len(union)

    def test_over_budget_rejected_while_other_client_completes(
        self, tmp_path
    ):
        server = _Server(tmp_path, budget=2)
        try:
            with server.client() as greedy, server.client() as modest:
                with pytest.raises(SweepRejected) as err:
                    greedy.submit(grid=GRID_A)  # 4 jobs > budget 2
                assert err.value.code == protocol.REJECT_OVER_BUDGET
                # The refusal cost nothing and broke nothing: the
                # greedy connection stays usable and the modest
                # client's sweep runs to completion.
                assert greedy.ping()
                small = {**GRID_A, "workloads": ["fibo"]}  # 2 jobs
                outcome = modest.submit(grid=small)
                assert outcome.ok and outcome.done["ok"] == 2
                # Budget is per-connection lifetime: a second modest
                # submission overflows its own budget too.
                with pytest.raises(SweepRejected) as err:
                    modest.submit(grid=small)
                assert err.value.code == protocol.REJECT_OVER_BUDGET
        finally:
            server.stop()

    def test_over_inflight_rejection(self, tmp_path):
        server = _Server(tmp_path, max_inflight=2)
        try:
            with server.client() as client:
                with pytest.raises(SweepRejected) as err:
                    client.submit(grid=GRID_A)  # 4 jobs > in-flight cap 2
                assert err.value.code == protocol.REJECT_OVER_INFLIGHT
                assert client.ping()
        finally:
            server.stop()

    def test_bad_grid_rejected_with_structured_code(self, tmp_path):
        server = _Server(tmp_path)
        try:
            with server.client() as client:
                with pytest.raises(SweepRejected) as err:
                    client.submit(
                        grid={**GRID_A, "workloads": ["no-such-workload"]}
                    )
                assert err.value.code == protocol.REJECT_BAD_REQUEST
        finally:
            server.stop()

    def test_ping_stats_and_cached_resubmit(self, tmp_path):
        server = _Server(tmp_path)
        try:
            with server.client() as client:
                assert client.ping()
                small = {**GRID_A, "workloads": ["fibo"]}
                first = client.submit(grid=small)
                assert first.ok and first.done["cached"] == 0
                # Same grid again: flights resolved, so this is pure
                # result-cache traffic — zero new simulations.
                second = client.submit(grid=small)
                assert second.ok and second.done["cached"] == 2
                assert second.results == first.results
                stats = client.stats()
                assert stats["scheduler"]["jobs_completed"] == 4
                assert stats["scheduler"]["metrics"]["sims"] == 2
                assert stats["client"]["budget_used"] == 4
        finally:
            server.stop()
