"""Unit tests for the area/power/EDP model (Table V)."""

import pytest

from repro.power import AreaPowerModel, ScdHardwareParams, edp_improvement


@pytest.fixture(scope="module")
def model():
    return AreaPowerModel()


class TestHeadlineNumbers:
    def test_total_area_delta_near_paper(self, model):
        # Paper: +0.72%.
        assert 0.005 < model.total_area_delta < 0.010

    def test_total_power_delta_near_paper(self, model):
        # Paper: +1.09%.
        assert 0.008 < model.total_power_delta < 0.014

    def test_btb_area_delta_near_paper(self, model):
        # Paper: +21.6%.
        assert 0.17 < model.btb_area_delta < 0.26

    def test_btb_power_delta_near_paper(self, model):
        # Paper: +11.7%.
        assert 0.08 < model.btb_power_delta < 0.15


class TestBreakdown:
    def test_all_modules_present(self, model):
        names = [c.name for c in model.breakdown()]
        assert names[0] == "Top"
        for expected in ("Tile", "Core", "FPU", "ICache", "BTB", "DCache"):
            assert expected in names

    def test_untouched_modules_unchanged(self, model):
        rows = {c.name: c for c in model.breakdown()}
        for name in ("FPU", "DCache", "ITLB", "Div", "HTIF"):
            assert rows[name].area_delta == 0.0
            assert rows[name].power_delta == 0.0

    def test_btb_delta_propagates_up(self, model):
        rows = {c.name: c for c in model.breakdown()}
        btb_growth = rows["BTB"].scd_area - rows["BTB"].base_area
        core_growth = rows["Core"].scd_area - rows["Core"].base_area
        top_growth = rows["Top"].scd_area - rows["Top"].base_area
        assert top_growth == pytest.approx(btb_growth + core_growth)

    def test_scd_never_smaller(self, model):
        for comp in model.breakdown():
            assert comp.scd_area >= comp.base_area
            assert comp.scd_power >= comp.base_power

    def test_baseline_matches_paper_calibration(self, model):
        rows = {c.name: c for c in model.breakdown()}
        assert rows["Top"].base_area == pytest.approx(0.690)
        assert rows["Top"].base_power == pytest.approx(18.46)
        assert rows["BTB"].base_area == pytest.approx(0.019)


class TestEdp:
    def test_paper_operating_point(self, model):
        # 12.04% FPGA speedup -> ~24.2% EDP improvement.
        edp = edp_improvement(1.1204, model.total_power_delta)
        assert 0.22 < edp < 0.27

    def test_no_speedup_means_loss(self, model):
        assert edp_improvement(1.0, model.total_power_delta) < 0

    def test_monotone_in_speedup(self, model):
        deltas = [
            edp_improvement(s, model.total_power_delta)
            for s in (1.0, 1.05, 1.1, 1.2)
        ]
        assert deltas == sorted(deltas)

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            edp_improvement(0.0, 0.01)


class TestParametrics:
    def test_more_tables_cost_more_core_area(self):
        small = AreaPowerModel(ScdHardwareParams(tables=1))
        large = AreaPowerModel(ScdHardwareParams(tables=16))
        assert large.total_area_delta > small.total_area_delta
        # But BTB growth is table-independent (J/B bits are shared).
        assert large.btb_area_delta == pytest.approx(small.btb_area_delta)

    def test_wider_tags_grow_relative_cam_cost(self):
        narrow = AreaPowerModel(ScdHardwareParams(tag_bits=20))
        wide = AreaPowerModel(ScdHardwareParams(tag_bits=40))
        assert wide.btb_area_delta > narrow.btb_area_delta
