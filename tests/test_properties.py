"""Cross-cutting property-based tests (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

# Every test here runs derandomized (fixed example generation): the
# per-class settings add derandomize=True on top of the suite-wide
# "deterministic" profile registered in conftest.py, so these property
# tests cannot flake or change behaviour between runs.

from repro.core.results import geomean
from repro.isa import Kind, assemble
from repro.isa.instructions import is_control_flow
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import Cache
from repro.vm.lua.opcodes import decode as lua_decode


# -- assembler / program invariants -------------------------------------------

_MNEMONICS = st.sampled_from(
    ["add", "sub", "and", "sll", "ldq", "stq", "cmpeq", "lda", "nop"]
)


@st.composite
def _programs(draw):
    n_blocks = draw(st.integers(1, 6))
    lines = []
    for index in range(n_blocks):
        lines.append(f"B{index}:")
        for _ in range(draw(st.integers(1, 6))):
            lines.append(draw(_MNEMONICS) + " r1, r2, r3")
        kind = draw(st.sampled_from(["fall", "branch", "jump", "ret"]))
        target = f"B{draw(st.integers(0, n_blocks - 1))}"
        if kind == "branch":
            lines.append(f"beq r1, {target}")
        elif kind == "jump":
            lines.append(f"br {target}")
        elif kind == "ret":
            lines.append("ret")
    return "\n".join(lines) + "\n"


class TestProgramInvariants:
    @given(_programs())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_blocks_partition_instructions(self, text):
        program = assemble(text)
        covered = sum(block.n_insts for block in program.blocks)
        assert covered == len(program)

    @given(_programs())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_blocks_contiguous_and_ordered(self, text):
        program = assemble(text)
        cursor = program.base
        for block in program.blocks:
            assert block.start_pc == cursor
            cursor = block.end_pc

    @given(_programs())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_control_flow_only_at_block_end(self, text):
        program = assemble(text)
        for block in program.blocks:
            for inst in block.instructions[:-1]:
                assert not is_control_flow(inst.kind)

    @given(_programs())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_direct_targets_resolve_to_block_starts(self, text):
        program = assemble(text)
        for block in program.blocks:
            term = block.term
            if term is not None and term.target is not None:
                assert program.block_at(term.target) is not None


# -- Lua compiler invariants ----------------------------------------------------


@st.composite
def _arith_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return str(draw(st.integers(-99, 99)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(_arith_exprs(depth=depth + 1))
    right = draw(_arith_exprs(depth=depth + 1))
    return f"({left} {op} {right})"


class TestCompilerProperties:
    @given(_arith_exprs())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_constant_expressions_evaluate_correctly(self, expr):
        from conftest import run_both

        expected = eval(expr)  # ints only: Python semantics match
        assert run_both(f"print({expr});") == [str(expected)]

    @given(_arith_exprs())
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_lua_code_words_decode_to_valid_opcodes(self, expr):
        from repro.lang import parse
        from repro.vm.lua import compile_module

        module = compile_module(parse(f"print({expr});"))
        for proto in module.protos:
            for word in proto.code:
                op = lua_decode(word)[0]
                assert 0 <= op < 47


# -- uarch invariants -------------------------------------------------------------


class TestUarchProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 60), st.integers(0, 200)),
            max_size=150,
        )
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_btb_lookup_never_invents_targets(self, ops):
        btb = BranchTargetBuffer(entries=16, ways=2)
        inserted_pc: dict[int, int] = {}
        inserted_jte: dict[int, int] = {}
        for is_jte, key, target in ops:
            if is_jte:
                btb.insert_jte(key, target)
                inserted_jte[key] = target
            else:
                btb.insert(key * 4, target)
                inserted_pc[key * 4] = target
        for key in set(inserted_pc):
            result = btb.lookup(key)
            assert result is None or result == inserted_pc[key]
        for key in set(inserted_jte):
            result = btb.lookup_jte(key)
            assert result is None or result == inserted_jte[key]

    @given(st.lists(st.integers(0, 1 << 15), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_cache_miss_count_bounded_by_accesses(self, addresses):
        cache = Cache(2048, 2, 64)
        for address in addresses:
            cache.access(address)
        assert 0 < cache.accesses == len(addresses)
        assert 0 <= cache.misses <= cache.accesses
        distinct_lines = len({a >> 6 for a in addresses})
        assert cache.misses >= min(distinct_lines, 1)
        # Compulsory lower bound: at least one miss per distinct line
        # cannot be beaten... but conflict misses can add more.
        assert cache.misses >= distinct_lines - 2048 // 64 + 1 - 1 or True


# -- statistics helpers --------------------------------------------------------------


class TestGeomeanProperties:
    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_between_min_and_max(self, values):
        mean = geomean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(
        st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10),
        st.floats(0.5, 2.0),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_scale_invariance(self, values, factor):
        scaled = [v * factor for v in values]
        assert geomean(scaled) == pytest.approx(geomean(values) * factor)
