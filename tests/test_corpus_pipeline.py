"""End-to-end corpus pipeline: build -> run -> report.

Covers the corpus subsystem's contracts:

* manifest determinism — same seed rebuilds byte-identically, different
  seeds diverge, every requested stratum is covered;
* accounting — every program ends in exactly one of ok/error/skipped and
  the counts sum to the corpus size, including under tampering;
* run determinism — results.json is byte-identical serial vs ``-j2``,
  and under an injected ``corrupt-shard`` cache fault (degraded but
  recovered, with the quarantine reported);
* stratum skew — each opcode-mix stratum measurably raises its target
  opcode class over the mixed baseline on both VMs;
* the ``scd-repro corpus build|run|report`` CLI surface.

The corpora here are tiny (4-8 programs) and mostly single-VM /
two-scheme so the suite stays tier-1 fast.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.corpus import build_corpus, corpus_section, load_manifest, run_corpus
from repro.corpus.builder import load_program, plan_corpus
from repro.corpus.report import load_results, percentile
from repro.harness import faults, parallel
from repro.harness.cache import ResultCache
from repro.harness.cli import main
from repro.harness.parallel import METRICS
from repro.verify.generator import CORPUS_STRATA, generate_program
from repro.vm import capture
from repro.vm.profile import class_mix, profile_source
from repro.workloads.synthetic import program_digest


@pytest.fixture(autouse=True)
def _reset_globals(monkeypatch):
    """CLI calls install process-wide defaults; undo them after each test."""
    monkeypatch.delenv(faults.FAULT_ENV, raising=False)
    monkeypatch.delenv("SCD_FAULT_DIR", raising=False)
    monkeypatch.delenv(obs.TRACE_ENV, raising=False)
    monkeypatch.setenv("SCD_REPRO_RETRY_BACKOFF", "0")
    faults.reset_plan_cache()
    yield
    parallel.set_default_workers(None)
    parallel.set_default_retries(None)
    parallel.set_default_job_timeout(None)
    capture.set_default_trace_mode(None)
    os.environ.pop(faults.FAULT_ENV, None)
    os.environ.pop("SCD_FAULT_DIR", None)
    faults.reset_plan_cache()
    obs.close()
    METRICS.reset()


def _build(root, seed=3, size=4, **kwargs):
    return build_corpus(root, seed=seed, size=size, **kwargs)


def _run(root, tmp_path, tag, workers=1, **kwargs):
    """Run a corpus through a private result cache (so two runs of the
    same corpus cannot resolve each other's grid points)."""
    kwargs.setdefault("vms", ("lua",))
    kwargs.setdefault("schemes", ("baseline", "scd"))
    cache = ResultCache(f"corpus-test-{tag}", root=tmp_path / f"cache-{tag}")
    return run_corpus(root, workers=workers, cache=cache, **kwargs)


class TestBuild:
    def test_same_seed_rebuilds_byte_identical_manifest(self, tmp_path):
        _build(tmp_path / "a", seed=11, size=8)
        _build(tmp_path / "b", seed=11, size=8)
        a = (tmp_path / "a" / "manifest.json").read_bytes()
        b = (tmp_path / "b" / "manifest.json").read_bytes()
        assert a == b

    def test_different_seed_changes_manifest(self, tmp_path):
        _build(tmp_path / "a", seed=11, size=8)
        _build(tmp_path / "b", seed=12, size=8)
        a = (tmp_path / "a" / "manifest.json").read_bytes()
        b = (tmp_path / "b" / "manifest.json").read_bytes()
        assert a != b

    def test_every_stratum_covered_and_sources_match_digests(self, tmp_path):
        manifest = _build(tmp_path / "c", seed=5, size=8)
        assert sorted(manifest["strata"]) == sorted(CORPUS_STRATA)
        by_stratum = {row["stratum"] for row in manifest["programs"]}
        assert by_stratum == set(CORPUS_STRATA)
        for row in manifest["programs"]:
            program = load_program(tmp_path / "c", row)
            assert program_digest(program.source_text) == row["digest"]

    def test_manifest_roundtrip_and_overwrite_guard(self, tmp_path):
        root = tmp_path / "c"
        built = _build(root, seed=5, size=4)
        assert load_manifest(root) == json.loads(
            json.dumps(built)  # what load_manifest sees: the JSON image
        )
        with pytest.raises(FileExistsError):
            _build(root, seed=5, size=4)
        rebuilt = _build(root, seed=6, size=4, force=True)
        assert rebuilt["seed"] == 6

    def test_plan_rejects_unknown_stratum_and_bad_size(self):
        with pytest.raises(ValueError, match="unknown stratum"):
            plan_corpus(0, 4, strata=("no-such-stratum",))
        with pytest.raises(ValueError, match="size"):
            plan_corpus(0, 0)


class TestRunAccounting:
    def test_accounting_sums_and_rows_cover_ok_grid(self, tmp_path):
        root = tmp_path / "c"
        _build(root)
        summary = _run(root, tmp_path, "clean")
        assert summary.ok == summary.total == 4
        assert summary.error == summary.skipped == 0
        assert summary.ok + summary.error + summary.skipped == summary.total
        per_stratum = summary.by_stratum
        assert sum(t["total"] for t in per_stratum.values()) == summary.total
        payload = load_results(root)
        # one row per ok program x vm x scheme
        assert len(payload["rows"]) == summary.ok * 1 * 2
        assert set(payload["outcomes"].values()) == {"ok"}
        for row in payload["rows"]:
            if row["scheme"] == "scd":
                assert "speedup" in row

    def test_tampered_source_quarantined_not_fatal(self, tmp_path):
        root = tmp_path / "c"
        manifest = _build(root)
        victim = manifest["programs"][1]
        path = root / victim["path"]
        path.write_text(path.read_text() + "\nlet tampered = 1;\n")
        summary = _run(root, tmp_path, "tamper")
        assert summary.error == 1 and summary.ok == 3
        assert summary.ok + summary.error + summary.skipped == summary.total
        reason = (
            root / "quarantine" / f"{victim['name']}.reason.txt"
        ).read_text()
        assert "digest mismatch" in reason
        assert victim["name"] in summary.errors
        payload = load_results(root)
        assert payload["outcomes"][victim["name"]] == "error"
        assert payload["accounting"]["error"] == 1

    def test_limit_and_stratum_filters_account_as_skipped(self, tmp_path):
        root = tmp_path / "c"
        _build(root, size=8)
        summary = _run(root, tmp_path, "lim", limit=2)
        assert (summary.ok, summary.skipped) == (2, 6)
        summary = _run(root, tmp_path, "strat", strata=("arith",))
        assert summary.ok == 2 and summary.skipped == 6
        assert summary.by_stratum["arith"]["ok"] == 2
        assert summary.by_stratum["call"]["skipped"] == 2


class TestRunDeterminism:
    def test_serial_and_j2_results_byte_identical(self, tmp_path):
        root = tmp_path / "c"
        _build(root)
        _run(root, tmp_path, "serial", workers=1)
        serial = (root / "results.json").read_bytes()
        _run(root, tmp_path, "pool", workers=2)
        pooled = (root / "results.json").read_bytes()
        assert serial == pooled

    def test_corrupt_shard_fault_degrades_but_completes(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "c"
        _build(root)
        _run(root, tmp_path, "ref", workers=1)
        reference = (root / "results.json").read_bytes()

        # A faulted run tears its 0th cache-shard write mid-flight; the
        # run itself completes with full accounting and identical results
        # (the torn entry is only read back later).
        monkeypatch.setenv(faults.FAULT_ENV, "corrupt-shard:0")
        monkeypatch.setenv("SCD_FAULT_DIR", str(tmp_path / "fault-state"))
        faults.reset_plan_cache()
        shared = ResultCache("corpus-test-fault", root=tmp_path / "cache-f")
        summary = run_corpus(
            root, vms=("lua",), schemes=("baseline", "scd"),
            workers=1, cache=shared,
        )
        assert summary.ok == summary.total
        assert (root / "results.json").read_bytes() == reference

        # A later session over the same cache root (fresh result
        # namespace, shared trace store — the perf-suite pattern) reads
        # the torn shard: the cache layer quarantines it with a reason
        # sidecar, re-records the trace, and the degradation is
        # reported — never silent.
        monkeypatch.delenv(faults.FAULT_ENV)
        faults.reset_plan_cache()
        warm = ResultCache("corpus-test-fault2", root=tmp_path / "cache-f")
        summary = run_corpus(
            root, vms=("lua",), schemes=("baseline", "scd"),
            workers=1, cache=warm,
        )
        assert summary.ok == summary.total
        assert summary.quarantined > 0
        assert (root / "results.json").read_bytes() == reference
        sidecars = list(
            (tmp_path / "cache-f").rglob("quarantine/**/*.reason.txt")
        )
        assert sidecars


class TestStratumSkew:
    #: stratum name -> opcode class it must amplify (see OPCODE_CLASSES).
    TARGETS = {
        "arith": "arith",
        "call": "call",
        "branch": "branch",
        "table-str": "table_str",
    }

    @staticmethod
    def _mean_share(stratum: str, target: str, vm: str,
                    seeds=(0, 1, 2)) -> float:
        shares = []
        for seed in seeds:
            program = generate_program(seed, "small", stratum=stratum)
            profile = profile_source(program.source, vm=vm)
            shares.append(class_mix(profile)[target])
        return sum(shares) / len(shares)

    @pytest.mark.parametrize("vm", ["lua", "js"])
    @pytest.mark.parametrize("stratum", sorted(TARGETS))
    def test_stratum_raises_its_target_class(self, stratum, vm):
        target = self.TARGETS[stratum]
        skewed = self._mean_share(stratum, target, vm)
        # Baseline: the mixed stratum's mean for the *same* target class
        # over the same seeds.
        mixed = self._mean_share("mixed", target, vm)
        assert skewed > mixed, (
            f"{stratum} stratum does not skew {self.TARGETS[stratum]} on "
            f"{vm}: {skewed:.4f} <= mixed {mixed:.4f}"
        )


class TestReport:
    def test_percentile_interpolation(self):
        assert percentile([], 50) is None
        assert percentile([7.0], 90) == 7.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 10) == pytest.approx(1.3)
        assert percentile([4.0, 1.0, 3.0, 2.0], 90) == pytest.approx(3.7)

    def test_corpus_section_renders_strata_and_percentiles(self, tmp_path):
        root = tmp_path / "c"
        _build(root)
        _run(root, tmp_path, "rep")
        section = corpus_section(root)
        assert section.startswith("## Corpus")
        assert "4 program(s) (seed 3): 4 ok, 0 error, 0 skipped." in section
        for stratum in CORPUS_STRATA:
            assert stratum in section
        assert "geomean speedup" in section
        assert "dispatch_mpki" in section and "btb_miss_mpki" in section
        assert "p10" in section and "p50" in section and "p90" in section
        # whole-corpus pseudo-stratum
        assert "\nall " in section


class TestCli:
    def test_build_run_report_end_to_end(self, tmp_path, capsys):
        root = str(tmp_path / "c")
        assert main(["corpus", "build", "--root", root,
                     "--seed", "5", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "built corpus of 4 program(s)" in out

        # Rebuild without --force refuses; argparse surface stays intact.
        with pytest.raises(FileExistsError):
            main(["corpus", "build", "--root", root,
                  "--seed", "5", "--size", "4"])

        assert main(["corpus", "run", "--root", root, "-j2",
                     "--vm", "lua", "--schemes", "baseline,scd"]) == 0
        out = capsys.readouterr().out
        assert "4 ok, 0 error, 0 skipped of 4" in out

        assert main(["corpus", "report", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "## Corpus" in out
        assert "geomean speedup" in out

    def test_run_with_corrupt_shard_fault_flag(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("SCD_FAULT_DIR", str(tmp_path / "fault-state"))
        root = str(tmp_path / "c")
        assert main(["corpus", "build", "--root", root,
                     "--seed", "9", "--size", "2"]) == 0
        capsys.readouterr()
        # Faulted run: tears its 0th cache-shard write but completes with
        # full accounting (the corpus cache lives under <root>/cache).
        # -j1 keeps the shard-write order deterministic, so tick 0 lands
        # on the first program's trace shard.
        assert main(["--fault", "corrupt-shard:0",
                     "corpus", "run", "--root", root, "-j1",
                     "--vm", "lua", "--schemes", "baseline,scd"]) == 0
        captured = capsys.readouterr()
        assert "2 ok, 0 error, 0 skipped of 2" in captured.out
        reference = (tmp_path / "c" / "results.json").read_bytes()
        # Drop the result-entry namespace (keep traces/memos), then
        # re-run clean: the replay reads the torn trace shard, the cache
        # layer quarantines it, and the CLI reports the degradation on
        # stderr.
        import shutil

        from repro.harness.cache import CACHE_VERSION

        shutil.rmtree(
            tmp_path / "c" / "cache" / f"v{CACHE_VERSION}" / "corpus"
        )
        monkeypatch.delenv(faults.FAULT_ENV)
        faults.reset_plan_cache()
        assert main(["corpus", "run", "--root", root,
                     "--vm", "lua", "--schemes", "baseline,scd"]) == 0
        captured = capsys.readouterr()
        assert "2 ok, 0 error, 0 skipped of 2" in captured.out
        assert "quarantined" in captured.err
        assert (tmp_path / "c" / "results.json").read_bytes() == reference
