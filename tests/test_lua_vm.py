"""Behavioural tests for the Lua-like register VM."""

import pytest

from repro.lang import parse
from repro.vm.lua import CompileError, LuaVM, Op, compile_module
from repro.vm.trace import CALLEE_BUILTIN, CALLEE_RETURN, CALLEE_SCRIPT, Site
from repro.vm.values import VmError

from conftest import run_lua


class TestArithmetic:
    def test_basic(self):
        assert run_lua("print(1 + 2 * 3);") == ["7"]

    def test_division_semantics(self):
        assert run_lua("print(1 / 2); print(7 // 2); print(7 % 3);") == [
            "0.5", "3", "1",
        ]

    def test_unary_minus(self):
        assert run_lua("var x = 5; print(-x);") == ["-5"]

    def test_bignum(self):
        assert run_lua("var x = 1; for i = 1, 40 { x = x * 10; } print(x);") == [
            "1" + "0" * 40
        ]

    def test_float_formatting(self):
        assert run_lua("print(4.0); print(2.5);") == ["4.0", "2.5"]


class TestControlFlow:
    def test_if_else(self):
        src = "if (1 < 2) { print(1); } else { print(2); }"
        assert run_lua(src) == ["1"]

    def test_else_if_chain(self):
        src = """
        var x = 2;
        if (x == 1) { print("one"); }
        else if (x == 2) { print("two"); }
        else { print("many"); }
        """
        assert run_lua(src) == ["two"]

    def test_while_loop(self):
        assert run_lua("var i = 0; while (i < 4) { i = i + 1; } print(i);") == ["4"]

    def test_for_inclusive(self):
        assert run_lua("var s = 0; for i = 1, 5 { s = s + i; } print(s);") == ["15"]

    def test_for_negative_step(self):
        assert run_lua("var out = \"\"; for i = 3, 1, -1 { out = out .. i; } print(out);") == ["321"]

    def test_for_step_skips(self):
        assert run_lua("var n = 0; for i = 0, 10, 3 { n = n + 1; } print(n);") == ["4"]

    def test_for_zero_trip(self):
        assert run_lua("var n = 0; for i = 5, 1 { n = n + 1; } print(n);") == ["0"]

    def test_break_and_continue(self):
        src = """
        var s = 0;
        for i = 1, 10 {
            if (i % 2 == 0) { continue; }
            if (i > 7) { break; }
            s = s + i;
        }
        print(s);
        """
        assert run_lua(src) == ["16"]  # 1+3+5+7

    def test_continue_in_while(self):
        src = """
        var i = 0; var s = 0;
        while (i < 5) { i = i + 1; if (i == 3) { continue; } s = s + i; }
        print(s);
        """
        assert run_lua(src) == ["12"]

    def test_nested_loops_break_inner_only(self):
        src = """
        var n = 0;
        for i = 1, 3 { for j = 1, 10 { if (j == 2) { break; } n = n + 1; } }
        print(n);
        """
        assert run_lua(src) == ["3"]


class TestLogic:
    def test_and_or_values(self):
        assert run_lua("print(nil or 5); print(false and 9); print(1 and 2);") == [
            "5", "false", "2",
        ]

    def test_short_circuit(self):
        # boom() would raise; short-circuit must avoid the call.
        src = """
        fn boom() { print("BOOM"); return true; }
        var x = false and boom();
        var y = true or boom();
        print(x); print(y);
        """
        assert run_lua(src) == ["false", "true"]

    def test_not(self):
        assert run_lua("print(not nil); print(not 0);") == ["true", "false"]

    def test_comparison_as_value(self):
        assert run_lua("var b = 3 > 2; print(b); print(2 > 3);") == ["true", "false"]


class TestFunctions:
    def test_recursion(self):
        assert run_lua(
            "fn f(n) { if (n < 2) { return n; } return f(n-1) + f(n-2); } print(f(10));"
        ) == ["55"]

    def test_mutual_recursion(self):
        src = """
        fn is_even(n) { if (n == 0) { return true; } return is_odd(n - 1); }
        fn is_odd(n) { if (n == 0) { return false; } return is_even(n - 1); }
        print(is_even(10)); print(is_odd(7));
        """
        assert run_lua(src) == ["true", "true"]

    def test_return_nil_by_default(self):
        assert run_lua("fn f() { } print(f());") == ["nil"]

    def test_args_beyond_params_dropped(self):
        assert run_lua("fn f(a) { return a; } print(f(1));") == ["1"]

    def test_missing_args_are_nil(self):
        assert run_lua("fn f(a, b) { return b; } print(f(1));") == ["nil"]

    def test_call_depth_limit(self):
        vm = LuaVM.from_source("fn f(n) { return f(n + 1); } print(f(0));")
        with pytest.raises(VmError, match="stack overflow"):
            vm.run()

    def test_call_non_function_at_runtime(self):
        # A local can hold anything; calling a non-function fails at runtime.
        vm = LuaVM.from_source("fn f() { var g = 5; return g(); } print(f());")
        with pytest.raises(VmError, match="call a non-function"):
            vm.run()

    def test_unknown_callee_rejected_at_compile_time(self):
        with pytest.raises(CompileError, match="undefined function"):
            LuaVM.from_source("print(notdefined());")

    def test_step_limit(self):
        vm = LuaVM.from_source("var i = 0; while (true) { i = i + 1; }", max_steps=1000)
        with pytest.raises(VmError, match="step limit"):
            vm.run()


class TestDataStructures:
    def test_array_ops(self):
        src = """
        var a = [1, 2, 3];
        a[0] = 10;
        a[3] = 4;
        print(a[0] + a[3]); print(len(a));
        """
        assert run_lua(src) == ["14", "4"]

    def test_large_array_literal_setlist_batches(self):
        items = ", ".join(str(i) for i in range(120))
        src = f"var a = [{items}]; print(a[0]); print(a[60]); print(a[119]); print(len(a));"
        assert run_lua(src) == ["0", "60", "119", "120"]

    def test_array_literal_into_reassigned_local(self):
        # Exercises the MOVE path when the target is not top-of-stack.
        src = """
        fn f() {
            var a = [0];
            var b = 5;
            a = [7, 8];
            return a[1] + b;
        }
        print(f());
        """
        assert run_lua(src) == ["13"]

    def test_map_ops(self):
        src = """
        var m = {a: 1, b: 2};
        m["c"] = m["a"] + m["b"];
        print(m["c"]); print(m["zz"]); print(len(m));
        """
        assert run_lua(src) == ["3", "nil", "3"]

    def test_nested_structures(self):
        src = """
        var grid = [[1, 2], [3, 4]];
        print(grid[1][0]);
        grid[0][1] = 9;
        print(grid[0][1]);
        """
        assert run_lua(src) == ["3", "9"]

    def test_concat_chain(self):
        assert run_lua('print("a" .. 1 .. "b" .. 2.5);') == ["a1b2.5"]


class TestScoping:
    def test_locals_shadow_globals(self):
        src = """
        var x = 1;
        fn f() { var x = 2; return x; }
        print(f()); print(x);
        """
        assert run_lua(src) == ["2", "1"]

    def test_function_reads_global(self):
        src = "var g = 10; fn f() { return g + 1; } print(f());"
        assert run_lua(src) == ["11"]

    def test_function_writes_global(self):
        src = "var g = 0; fn bump() { g = g + 1; } bump(); bump(); print(g);"
        assert run_lua(src) == ["2"]

    def test_block_scoping(self):
        src = """
        fn f() {
            var x = 1;
            if (true) { var y = 2; x = x + y; }
            if (true) { var y = 30; x = x + y; }
            return x;
        }
        print(f());
        """
        assert run_lua(src) == ["33"]

    def test_duplicate_local_rejected(self):
        with pytest.raises(CompileError, match="duplicate"):
            LuaVM.from_source("fn f() { var a = 1; var a = 2; }")


class TestCompilerErrors:
    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break"):
            LuaVM.from_source("break;")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            LuaVM.from_source("ghost(1);")

    def test_builtin_shadow_rejected(self):
        with pytest.raises(CompileError, match="shadows a builtin"):
            LuaVM.from_source("fn print(x) { }")


class TestTrace:
    def _trace(self, source):
        events = []
        vm = LuaVM.from_source(source)
        vm.run(trace=lambda *a: events.append(a))
        return vm, events

    def test_one_event_per_step(self):
        vm, events = self._trace("var s = 0; for i = 1, 20 { s = s + i; } print(s);")
        assert len(events) == vm.steps

    def test_all_events_main_site(self):
        _vm, events = self._trace("print(1 + 2);")
        assert all(e[1] == Site.MAIN for e in events)

    def test_callee_kinds_present(self):
        _vm, events = self._trace("fn f() { return 1; } print(f());")
        kinds = {e[3] for e in events}
        assert CALLEE_SCRIPT in kinds
        assert CALLEE_BUILTIN in kinds
        assert CALLEE_RETURN in kinds

    def test_forloop_taken_pattern(self):
        _vm, events = self._trace("for i = 1, 3 { }")
        forloops = [e for e in events if e[0] == Op.FORLOOP]
        assert [e[2] for e in forloops] == [1, 1, 1, 0]  # 3 taken + exit

    def test_builtin_cost_attached(self):
        _vm, events = self._trace('print("hello");')
        call_events = [e for e in events if e[3] == CALLEE_BUILTIN]
        assert call_events and call_events[0][6] is not None

    def test_daddrs_are_ints(self):
        _vm, events = self._trace("var a = [1]; a[0] = a[0] + 1;")
        for event in events:
            assert all(isinstance(addr, int) for addr in event[4])


class TestCompiledShape:
    def test_comparison_uses_skip_idiom(self):
        module = compile_module(parse("if (1 < 2) { print(1); }"))
        ops = [w & 0x3F for w in module.main.code]
        assert Op.LT in ops
        assert Op.JMP in ops

    def test_fornum_uses_forprep_forloop(self):
        module = compile_module(parse("for i = 1, 3 { }"))
        ops = [w & 0x3F for w in module.main.code]
        assert Op.FORPREP in ops and Op.FORLOOP in ops

    def test_len_builtin_compiles_to_len_opcode(self):
        module = compile_module(parse("var a = [1]; print(len(a));"))
        ops = [w & 0x3F for w in module.main.code]
        assert Op.LEN in ops

    def test_concat_single_instruction_for_chain(self):
        module = compile_module(parse('var s = "a" .. "b" .. "c";'))
        ops = [w & 0x3F for w in module.main.code]
        assert ops.count(Op.CONCAT) == 1

    def test_every_proto_ends_with_return(self):
        module = compile_module(parse("fn f() { } var x = 1;"))
        for proto in module.protos:
            assert proto.code[-1] & 0x3F == Op.RETURN
