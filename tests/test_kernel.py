"""Tests for the exec-compiled replay kernels and the persistent memo.

The compiled-kernel contract is byte-identity: for every scheme, VM,
context-switch setting and memo mode, a run with kernels enabled must
produce exactly the SimResult of the interpreted event-by-event path.
The persistence contract is that a memo table exported by one process
binds and fires in a fresh process (fresh model-object identities) with
identical results — and that corruption of a persisted shard reads as a
quarantined miss, never as a wrong answer.
"""

import os
import subprocess
import sys

import pytest

from repro.core.simulation import SCHEMES, simulate
from repro.harness.cache import MemoStore, TraceStore, memo_key
from repro.native import kernel as kernel_mod
from repro.native.kernel import kernel_enabled, set_kernel_enabled
from repro.native.model import ModelRunner, get_model
from repro.uarch.config import cortex_a5
from repro.uarch.pipeline import MEMO_FORMAT_VERSION, Machine
from repro.vm.capture import MEMO_CHUNK_EVENTS, trace_key

ALL_SCHEMES = SCHEMES + ("ttc", "cascaded", "ittage", "superinst")

#: Long scalar loop: >28k events so the steady-state memo (4096-event
#: chunks) engages and the kernels see steady-state dispatch.
LOOP_SRC = 'var i = 0;\nwhile (i < 5000) { i = i + 1; }\nprint("done " .. i);\n'

#: Mixed control flow: calls, branches and builtins exercise every
#: kernel template kind (plain, branchy, workloop, callout).
CALL_SRC = (
    'fn f(n) { if (n < 2) { return n; } return f(n - 1) + f(n - 2); }\n'
    'print("fib " .. f(12));\n'
)


@pytest.fixture(autouse=True)
def _reset_kernel_mode():
    set_kernel_enabled(None)
    yield
    set_kernel_enabled(None)
    os.environ.pop("SCD_REPRO_KERNEL", None)


def _sig(result):
    return (
        result.cycles,
        result.instructions,
        result.cpi,
        result.branch_mpki,
        result.icache_mpki,
        result.dcache_mpki,
        result.bop_hits,
        result.bop_misses,
        result.jte_inserts,
        tuple(sorted(result.mispredicts_by_category.items())),
        tuple(sorted(result.insts_by_category.items())),
        tuple(sorted(result.cycle_breakdown.items())),
        result.output,
    )


class TestKernelIdentity:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("vm", ("lua", "js"))
    def test_live_identity(self, scheme, vm):
        """Kernel-on live simulation equals the interpreted path."""
        on = simulate("loop", vm=vm, scheme=scheme, source=LOOP_SRC,
                      use_kernel=True)
        off = simulate("loop", vm=vm, scheme=scheme, source=LOOP_SRC,
                       use_kernel=False)
        assert _sig(on) == _sig(off)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("memo", (True, False))
    def test_replay_identity(self, tmp_path, scheme, memo):
        """Kernel-on trace replay (memo on and off) equals interpreted."""
        store = TraceStore(root=tmp_path)
        simulate("loop", vm="lua", scheme="baseline", source=LOOP_SRC,
                 trace_store=store, trace_mode="record", use_kernel=False)
        results = [
            simulate("loop", vm="lua", scheme=scheme, source=LOOP_SRC,
                     trace_store=store, trace_mode="replay",
                     replay_memo=memo, use_kernel=enabled)
            for enabled in (True, False)
        ]
        assert _sig(results[0]) == _sig(results[1])

    @pytest.mark.parametrize("vm", ("lua", "js"))
    def test_context_switch_identity(self, vm):
        """The OS-interaction model (periodic flushes) stays identical."""
        on = simulate("loop", vm=vm, scheme="scd", source=CALL_SRC,
                      context_switch_interval=100, use_kernel=True)
        off = simulate("loop", vm=vm, scheme="scd", source=CALL_SRC,
                       context_switch_interval=100, use_kernel=False)
        assert _sig(on) == _sig(off)

    def test_kernel_events_dominate(self):
        """The compiled table actually handles the hot path: kernel-run
        events dwarf interpreted fallbacks on a steady loop."""
        meta: dict = {}
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 use_kernel=True, metrics=meta)
        assert meta["kernel_events"] > 0
        assert meta["kernel_events"] > 10 * meta["fallback_events"]

    def test_kernel_binds_only_plain_machines(self):
        """Instrumented Machine subclasses (the verify oracle) must keep
        the interpreted path: kernels inline Machine internals."""

        class Probe(Machine):
            pass

        model = get_model("lua", "scd")
        runner = ModelRunner(model, Probe(cortex_a5()), use_kernel=True)
        assert runner.kernel is None
        runner = ModelRunner(model, Machine(cortex_a5()), use_kernel=True)
        assert runner.kernel is not None


class TestKernelMode:
    def test_explicit_overrides_all(self):
        os.environ["SCD_REPRO_KERNEL"] = "1"
        set_kernel_enabled(True)
        assert kernel_enabled(False) is False

    def test_cli_default_overrides_env(self):
        os.environ["SCD_REPRO_KERNEL"] = "1"
        set_kernel_enabled(False)
        assert kernel_enabled(None) is False

    def test_env_opt_out(self):
        os.environ["SCD_REPRO_KERNEL"] = "0"
        assert kernel_enabled(None) is False

    def test_default_on(self):
        assert kernel_enabled(None) is True


class TestMemoPersistence:
    def _run(self, tmp_path, metrics):
        store = TraceStore(root=tmp_path)
        memos = MemoStore(root=tmp_path)
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 trace_store=store, trace_mode="auto")
        return simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                        trace_store=store, trace_mode="replay",
                        memo_store=memos, metrics=metrics)

    def test_memo_round_trip(self, tmp_path):
        """A second store instance imports the first run's table and
        skips its warm-up chunks, with identical results."""
        m1: dict = {}
        m2: dict = {}
        r1 = self._run(tmp_path, m1)
        r2 = self._run(tmp_path, m2)
        assert m1["memo_loaded"] == 0
        assert m2["memo_loaded"] > 0
        assert m2["memo_hits"] > m1["memo_hits"]
        assert _sig(r1) == _sig(r2)

    def test_cross_process_persistence(self, tmp_path):
        """A fresh process (fresh model-object identities) binds the
        persisted table through the codec and converges faster."""
        script = (
            "import sys\n"
            "from repro.core.simulation import simulate\n"
            "from repro.harness.cache import MemoStore, TraceStore\n"
            f"SRC = {LOOP_SRC!r}\n"
            "store = TraceStore(root=sys.argv[1])\n"
            "memos = MemoStore(root=sys.argv[1])\n"
            "simulate('loop', vm='lua', scheme='scd', source=SRC,\n"
            "         trace_store=store, trace_mode='auto')\n"
            "m = {}\n"
            "r = simulate('loop', vm='lua', scheme='scd', source=SRC,\n"
            "             trace_store=store, trace_mode='replay',\n"
            "             memo_store=memos, metrics=m)\n"
            "print(m.get('memo_hits', 0), m.get('memo_loaded', 0), r.cycles)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        lines = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path)],
                capture_output=True, text=True, env=env, check=True,
            )
            lines.append(proc.stdout.split())
        hits1, loaded1, cycles1 = map(int, lines[0])
        hits2, loaded2, cycles2 = map(int, lines[1])
        assert loaded1 == 0
        assert loaded2 > 0
        assert hits2 > hits1
        assert cycles1 == cycles2

    def test_key_embeds_version_and_structure(self):
        config = cortex_a5()
        key = memo_key(
            trace_key("lua", LOOP_SRC, 100), "scd", config, None, "flush",
            get_model("lua", "scd").structure_digest(), MEMO_CHUNK_EVENTS,
        )
        assert f"v{MEMO_FORMAT_VERSION}" in key
        assert get_model("lua", "scd").structure_digest() in key
        other = memo_key(
            trace_key("lua", LOOP_SRC, 100), "scd", config, 100, "flush",
            get_model("lua", "scd").structure_digest(), MEMO_CHUNK_EVENTS,
        )
        assert key != other

    def test_corrupt_shard_quarantined(self, tmp_path):
        """Bit-flipped persisted memos read as misses and move to
        quarantine; the replay still runs and stays correct."""
        m1: dict = {}
        reference = self._run(tmp_path, m1)
        memos = MemoStore(root=tmp_path)
        shards = list(memos.path.glob("*.bin"))
        assert shards
        for shard in shards:
            blob = bytearray(shard.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            shard.write_bytes(bytes(blob))
        m2: dict = {}
        result = simulate(
            "loop", vm="lua", scheme="scd", source=LOOP_SRC,
            trace_store=TraceStore(root=tmp_path), trace_mode="replay",
            memo_store=memos, metrics=m2,
        )
        assert m2["memo_loaded"] == 0
        assert _sig(result) == _sig(reference)
        quarantine = memos.root / "quarantine" / memos.name
        assert list(quarantine.glob("*.bin"))
        assert list(quarantine.glob("*.reason.txt"))

    def test_truncated_shard_quarantined(self, tmp_path):
        self._run(tmp_path, {})
        memos = MemoStore(root=tmp_path)
        shard = next(iter(memos.path.glob("*.bin")))
        shard.write_bytes(shard.read_bytes()[:4])
        assert memos.get("no-such-key") is None  # plain miss, not quarantine
        # The key hashing to this shard is not reconstructable here, so
        # exercise the frame validation the store runs on read directly.
        from repro.uarch.pipeline import MemoFormatError, check_memo_frame

        with pytest.raises(MemoFormatError):
            check_memo_frame(shard.read_bytes())


class TestCompiledShape:
    def test_shape_keys_compilation_cache(self):
        """Two machines with different predictors get different shapes,
        so kernels are never shared across incompatible configs."""
        model = get_model("lua", "scd")
        a5 = Machine(cortex_a5())
        runner = ModelRunner(model, a5, use_kernel=True)
        shape = runner.kernel._shape()
        fpga = Machine(cortex_a5().with_changes(
            direction_predictor="bimodal",
            predictor_params={"entries": 128},
        ))
        runner_fpga = ModelRunner(model, fpga, use_kernel=True)
        assert shape != runner_fpga.kernel._shape()

    def test_compile_cache_is_shared(self):
        """Identical (vm, strategy, op, site, shape) hits the process-wide
        lru cache instead of re-exec-ing source."""
        info_before = kernel_mod._compiled_kernel.cache_info()
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 use_kernel=True)
        mid = kernel_mod._compiled_kernel.cache_info()
        assert mid.misses >= info_before.misses
        simulate("loop", vm="lua", scheme="scd", source=LOOP_SRC,
                 use_kernel=True)
        after = kernel_mod._compiled_kernel.cache_info()
        assert after.misses == mid.misses
        assert after.hits > mid.hits
