"""The differential verification subsystem (repro.verify)."""

from __future__ import annotations

import pytest

from repro.core.results import SimResult
from repro.core.simulation import SCHEMES, simulate
from repro.lang import parse, unparse
from repro.uarch import scd as scd_module
from repro.uarch.config import cortex_a5
from repro.verify import (
    CheckedMachine,
    DifferentialRunner,
    InvariantViolation,
    check_result,
    generate_program,
    run_verify,
    shrink_source,
)
from repro.verify.generator import SIZE_PROFILES

from conftest import run_both


# -- program generator --------------------------------------------------------


class TestGenerator:
    def test_deterministic(self):
        a = generate_program(42)
        b = generate_program(42)
        assert a.source == b.source
        assert a.size == b.size

    def test_distinct_seeds_distinct_programs(self):
        sources = {generate_program(seed).source for seed in range(8)}
        assert len(sources) == 8

    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    def test_unparse_parse_round_trip(self, seed):
        source = generate_program(seed).source
        assert unparse(parse(source)) == source

    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    def test_runs_on_both_vms_with_identical_output(self, seed):
        program = generate_program(seed)
        output = run_both(program.source)
        assert output  # the epilogue always prints the live state

    def test_explicit_size_profile(self):
        for size in SIZE_PROFILES:
            program = generate_program(1, size=size)
            assert program.size == size


# -- invariant checks ---------------------------------------------------------


def _result(**overrides) -> SimResult:
    base = simulate(
        "v",
        vm="lua",
        scheme="scd",
        source="print(1 + 2);",
        check_output=False,
    )
    if not overrides:
        return base
    fields = {name: getattr(base, name) for name in base.__dataclass_fields__}
    fields.update(overrides)
    return SimResult(**fields)


class TestCheckResult:
    def test_accepts_a_real_run(self):
        check_result(_result(), "scd")

    def test_rejects_breakdown_not_summing_to_cycles(self):
        broken = _result(cycles=_result().cycles + 1)
        with pytest.raises(InvariantViolation, match="breakdown"):
            check_result(broken, "scd")

    def test_rejects_scd_counters_on_non_scd_scheme(self):
        with pytest.raises(InvariantViolation, match="non-SCD"):
            check_result(_result(), "baseline")

    def test_rejects_scd_run_without_dispatch_traffic(self):
        silent = _result(bop_hits=0, bop_misses=0, jte_inserts=0)
        with pytest.raises(InvariantViolation, match="no bop"):
            check_result(silent, "scd")


class TestCheckedMachine:
    def test_logs_scd_traffic(self):
        result_log = []

        def probe(machine, runner):
            result_log.extend(machine.dispatch_log)

        simulate(
            "v",
            vm="lua",
            scheme="scd",
            source="print(1 + 2);",
            check_output=False,
            machine_factory=CheckedMachine,
            probe=probe,
        )
        kinds = {entry[0] for entry in result_log}
        assert kinds == {"bop", "jru", "flush"}

    def test_flush_invariant_catches_leaked_jtes(self):
        machine = CheckedMachine(cortex_a5())
        machine.scd.load_op(5, table=0)
        machine.jru(0x100, 0x2000, table=0)
        assert machine.btb.jte_count == 1
        # Sabotage: make the BTB "forget" one JTE is resident so the flush
        # count disagrees with the resident count.
        machine.btb._jte_count = 2
        with pytest.raises((InvariantViolation, AssertionError)):
            machine.jte_flush()


# -- the differential runner --------------------------------------------------


class TestDifferentialRunner:
    def test_clean_sweep(self):
        report = run_verify(seed=0, iters=2, pool_every=2)
        assert report.ok, [d.describe() for d in report.discrepancies]
        assert report.programs == 2
        assert report.pool_checks == 1
        # record + 4 schemes x (live, replay, replay-memo,
        # replay-nobatch, replay-memo-nobatch, replay-nokernel,
        # replay-memo-nokernel) + scd oracle, per VM.
        assert report.runs == 2 * 2 * (1 + len(SCHEMES) * 7 + 1)

    def test_catches_corrupted_jru_install(self, monkeypatch):
        """Breaking the SCD miss path must be caught (acceptance check)."""
        original = scd_module.ScdUnit.jru

        def corrupted(self, target, table=0):
            return original(self, target ^ 0x40, table)

        monkeypatch.setattr(scd_module.ScdUnit, "jru", corrupted)
        runner = DifferentialRunner(vms=("lua",), schemes=("baseline", "scd"))
        found = runner.check_source(generate_program(0).source)
        assert any(d.kind in ("scd-oracle", "path-mismatch") for d in found), [
            d.describe() for d in found
        ]

    def test_catches_wrong_bop_hit_target(self, monkeypatch):
        from repro.uarch.btb import BranchTargetBuffer

        original = BranchTargetBuffer.lookup_jte

        def corrupted(self, opcode, branch_id=0):
            target = original(self, opcode, branch_id)
            return None if target is None else target ^ 0x40

        monkeypatch.setattr(BranchTargetBuffer, "lookup_jte", corrupted)
        runner = DifferentialRunner(vms=("lua",), schemes=("baseline", "scd"))
        found = runner.check_source(generate_program(0).source)
        assert any(d.kind == "scd-oracle" for d in found), [
            d.describe() for d in found
        ]

    def test_catches_cross_vm_divergence(self, monkeypatch):
        """Corrupting one VM's arithmetic trips the cross-VM oracle."""
        import repro.vm.lua.interp as lua_interp

        original = lua_interp.arith

        def skewed(op, a, b):
            result = original(op, a, b)
            if op == "+" and isinstance(result, int):
                return result + 1
            return result

        monkeypatch.setattr(lua_interp, "arith", skewed)
        runner = DifferentialRunner(schemes=("baseline",))
        found = runner.check_source(generate_program(0, size="tiny").source)
        assert found, "corrupted lua arithmetic went unnoticed"

    def test_catches_live_vs_replay_divergence(self, monkeypatch):
        """A bug that only bites re-interpretation diverges live vs replay."""
        import repro.vm.lua.interp as lua_interp
        from repro.vm.lua import LuaVM

        instantiations = {"n": 0}
        original_from_source = LuaVM.from_source.__func__

        def counting(cls, *args, **kwargs):
            instantiations["n"] += 1
            return original_from_source(cls, *args, **kwargs)

        monkeypatch.setattr(LuaVM, "from_source", classmethod(counting))
        original_arith = lua_interp.arith

        def skewed(op, a, b):
            result = original_arith(op, a, b)
            # The record run (VM #1) stays clean; the live run (VM #2)
            # diverges — exactly the shape of an interpretation-order bug.
            if (
                op == "+"
                and instantiations["n"] >= 2
                and isinstance(result, int)
            ):
                return result + 1
            return result

        monkeypatch.setattr(lua_interp, "arith", skewed)
        runner = DifferentialRunner(vms=("lua",), schemes=("baseline",))
        found = runner.check_source(generate_program(0, size="tiny").source)
        assert any(d.kind in ("path-mismatch", "error") for d in found), [
            d.describe() for d in found
        ]


# -- the shrinker -------------------------------------------------------------


class TestShrinker:
    def test_deletes_irrelevant_statements(self):
        source = generate_program(4, size="tiny").source
        marker = source.splitlines()[0]  # first declaration

        def still_fails(candidate):
            try:
                run_both(candidate)
            except Exception:
                return False
            return marker in candidate

        small = shrink_source(source, still_fails)
        assert marker in small
        assert len(small.splitlines()) < len(source.splitlines())
        run_both(small)  # the survivor still executes cleanly

    def test_requires_failing_input(self):
        with pytest.raises(ValueError):
            shrink_source("print(1);", lambda s: False)

    def test_corpus_round_trip(self, tmp_path):
        from repro.verify import load_corpus, write_corpus_entry

        source = "print(1 + 2);\n"
        path = write_corpus_entry(
            source, seed=9, kind="path-mismatch", detail="cycles differ",
            corpus_dir=tmp_path,
        )
        assert path.exists()
        entries = list(load_corpus(tmp_path))
        assert len(entries) == 1
        loaded_path, loaded_source = entries[0]
        assert loaded_path == path
        assert loaded_source.strip() == source.strip()
        run_both(loaded_source)
