"""Integration tests for the top-level simulation driver."""

import pytest

from repro.core import SCHEMES, SimResult, geomean, scheme_parts, simulate, speedup
from repro.uarch.config import cortex_a5, rocket


@pytest.fixture(scope="module")
def fibo_results():
    """One small run per scheme, shared across this module's tests."""
    return {
        scheme: simulate("fibo", vm="lua", scheme=scheme, n=10, check_output=False)
        for scheme in SCHEMES
    }


class TestSchemeParts:
    def test_mapping(self):
        assert scheme_parts("baseline") == ("baseline", "btb")
        assert scheme_parts("threaded") == ("threaded", "btb")
        assert scheme_parts("vbbi") == ("baseline", "vbbi")
        assert scheme_parts("scd") == ("scd", "btb")
        assert scheme_parts("ttc") == ("baseline", "ttc")

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            scheme_parts("magic")


class TestSimulate:
    def test_result_fields(self, fibo_results):
        result = fibo_results["baseline"]
        assert result.vm == "lua"
        assert result.workload == "fibo"
        assert result.scale == "n=10"
        assert result.cycles > result.instructions > result.guest_steps
        assert result.output == ("55",)
        assert 0.0 < result.dispatch_fraction < 0.6

    def test_scd_beats_baseline(self, fibo_results):
        assert speedup(fibo_results["baseline"], fibo_results["scd"]) > 1.05

    def test_scd_cuts_instructions(self, fibo_results):
        assert (
            fibo_results["scd"].instructions
            < fibo_results["baseline"].instructions
        )

    def test_vbbi_same_instructions_fewer_mispredicts(self, fibo_results):
        base, vbbi = fibo_results["baseline"], fibo_results["vbbi"]
        assert vbbi.instructions == base.instructions
        assert vbbi.branch_mpki < base.branch_mpki

    def test_bop_stats_only_for_scd(self, fibo_results):
        assert fibo_results["scd"].bop_hits > 0
        assert fibo_results["baseline"].bop_hits == 0

    def test_output_verified_against_reference(self):
        result = simulate("fibo", vm="lua", scheme="baseline")
        assert list(result.output) == ["233"]  # fib(13)

    def test_js_vm(self):
        result = simulate("fibo", vm="js", scheme="scd", n=10, check_output=False)
        assert result.output == ("55",)
        assert result.vm == "js"

    def test_unknown_vm(self):
        with pytest.raises(ValueError, match="unknown vm"):
            simulate("fibo", vm="ruby")

    def test_raw_source(self):
        result = simulate(
            "custom", vm="lua", scheme="scd", source="print(6 * 7);"
        )
        assert result.output == ("42",)
        assert result.workload == "custom"

    def test_rocket_config(self):
        result = simulate(
            "fibo", vm="lua", scheme="scd", config=rocket(), n=10,
            check_output=False,
        )
        assert result.config_name == "rocket"

    def test_context_switches_reduce_bop_hit_rate(self):
        smooth = simulate("fibo", vm="lua", scheme="scd", n=11, check_output=False)
        choppy = simulate(
            "fibo", vm="lua", scheme="scd", n=11, check_output=False,
            context_switch_interval=100,
        )
        assert choppy.bop_hit_rate < smooth.bop_hit_rate
        assert choppy.cycles > smooth.cycles

    def test_jte_cap_config(self):
        config = cortex_a5().with_changes(jte_cap=2)
        result = simulate("fibo", vm="lua", scheme="scd", n=10,
                          check_output=False, config=config)
        # With only 2 resident JTEs, many dispatches fall to the slow path.
        assert result.bop_misses > result.guest_steps * 0.1

    def test_deterministic(self):
        a = simulate("fibo", vm="lua", scheme="scd", n=10, check_output=False)
        b = simulate("fibo", vm="lua", scheme="scd", n=10, check_output=False)
        assert a == b


class TestSimResult:
    def test_roundtrip(self, fibo_results):
        result = fibo_results["scd"]
        clone = SimResult.from_dict(result.to_dict())
        assert clone == result

    def test_dispatch_mpki(self, fibo_results):
        base = fibo_results["baseline"]
        assert 0 < base.dispatch_mpki() <= base.branch_mpki

    def test_speedup_zero_cycles_guard(self, fibo_results):
        import dataclasses

        broken = dataclasses.replace(fibo_results["scd"], cycles=0)
        with pytest.raises(ValueError):
            speedup(fibo_results["baseline"], broken)


class TestGeomean:
    def test_value(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
