"""Unit tests for the report helpers (generation itself runs in benchmarks)."""

import math

import pytest

from repro.core.results import geomean_or_none
from repro.harness.experiments import PAPER
from repro.harness.report import (
    _comparison_table,
    _dispatch_share,
    _minus_one,
    _verdict,
)
from repro.harness.tables import fmt, pct


class TestVerdict:
    def test_match_within_band(self):
        assert _verdict(0.10, 0.12, band=0.05) == "MATCH"

    def test_same_direction_outside_band(self):
        assert _verdict(0.10, 0.30, band=0.05) == "same direction"

    def test_diverges_on_sign_flip(self):
        assert _verdict(-0.05, 0.10, band=0.02) == "DIVERGES"

    def test_zero_paper_value(self):
        assert _verdict(0.0, 0.1, band=0.01) == "n/a"

    def test_zero_measured_is_na_not_same_direction(self):
        # A zero measurement is a degenerate run, not a confirmation.
        assert _verdict(0.1, 0.0, band=0.01) == "n/a"

    def test_none_measured_is_na(self):
        assert _verdict(0.1, None, band=0.01) == "n/a"


class TestDispatchShare:
    def test_normal_share(self):
        data = {"dispatch_mpki": [3.0, 1.0], "other_mpki": [1.0, 3.0]}
        assert _dispatch_share(data) == 0.5

    def test_zero_total_returns_none(self):
        # The old code raised ZeroDivisionError here and killed the report.
        data = {"dispatch_mpki": [0.0, 0.0], "other_mpki": [0.0]}
        assert _dispatch_share(data) is None

    def test_empty_series_returns_none(self):
        assert _dispatch_share({"dispatch_mpki": [], "other_mpki": []}) is None


class TestMinusOne:
    def test_value(self):
        assert _minus_one(1.25) == pytest.approx(0.25)

    def test_none_propagates(self):
        assert _minus_one(None) is None


class TestGeomeanOrNone:
    def test_matches_geomean_on_positive_values(self):
        assert geomean_or_none([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_none(self):
        assert geomean_or_none([]) is None

    def test_zero_value_is_none(self):
        # geomean of a set containing 0 is mathematically 0 but raises in
        # log space; degrading to None keeps the report alive.
        assert geomean_or_none([1.0, 0.0]) is None

    def test_negative_value_is_none(self):
        assert geomean_or_none([2.0, -1.0]) is None

    def test_accepts_generator(self):
        assert geomean_or_none(x for x in (1.0, 1.0)) == pytest.approx(1.0)


class TestNoneRendering:
    def test_pct_none(self):
        assert pct(None) == "n/a"

    def test_fmt_none(self):
        assert fmt(None) == "n/a"

    def test_fmt_value(self):
        assert fmt(math.pi, ".2f") == "3.14"


class TestComparisonTable:
    def test_renders(self):
        text = _comparison_table([["x", "+1.0%", "+1.2%", "MATCH"]])
        assert "quantity" in text
        assert "MATCH" in text


class TestPaperConstants:
    def test_headline_numbers_present(self):
        # The abstract's headline claims must be encoded for the report.
        assert PAPER["fig7_lua"]["scd"] == 0.199
        assert PAPER["fig7_js"]["scd"] == 0.141
        assert PAPER["table5_edp_improvement"] == 0.242
        assert PAPER["table5_area_delta"] == 0.0072

    def test_vbbi_numbers(self):
        assert PAPER["fig7_lua"]["vbbi"] == 0.088
        assert PAPER["fig7_js"]["vbbi"] == 0.053

    def test_table4_numbers(self):
        assert PAPER["table4_scd_savings"] == 0.1044
        assert PAPER["table4_scd_speedup"] == 0.1204
