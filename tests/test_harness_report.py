"""Unit tests for the report helpers (generation itself runs in benchmarks)."""

from repro.harness.experiments import PAPER
from repro.harness.report import _comparison_table, _verdict


class TestVerdict:
    def test_match_within_band(self):
        assert _verdict(0.10, 0.12, band=0.05) == "MATCH"

    def test_same_direction_outside_band(self):
        assert _verdict(0.10, 0.30, band=0.05) == "same direction"

    def test_diverges_on_sign_flip(self):
        assert _verdict(-0.05, 0.10, band=0.02) == "DIVERGES"

    def test_zero_paper_value(self):
        assert _verdict(0.0, 0.1, band=0.01) == "n/a"


class TestComparisonTable:
    def test_renders(self):
        text = _comparison_table([["x", "+1.0%", "+1.2%", "MATCH"]])
        assert "quantity" in text
        assert "MATCH" in text


class TestPaperConstants:
    def test_headline_numbers_present(self):
        # The abstract's headline claims must be encoded for the report.
        assert PAPER["fig7_lua"]["scd"] == 0.199
        assert PAPER["fig7_js"]["scd"] == 0.141
        assert PAPER["table5_edp_improvement"] == 0.242
        assert PAPER["table5_area_delta"] == 0.0072

    def test_vbbi_numbers(self):
        assert PAPER["fig7_lua"]["vbbi"] == 0.088
        assert PAPER["fig7_js"]["vbbi"] == 0.053

    def test_table4_numbers(self):
        assert PAPER["table4_scd_savings"] == 0.1044
        assert PAPER["table4_scd_speedup"] == 0.1204
