"""Unit tests for the SCD register unit (Table I semantics)."""

import pytest

from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.scd import ScdStateError, ScdUnit


@pytest.fixture
def unit():
    return ScdUnit(BranchTargetBuffer(entries=64, ways=2), tables=3)


class TestSetmask:
    def test_mask_applied_on_load_op(self, unit):
        unit.setmask(0x3F)
        opcode = unit.load_op(0xABC1_234E)  # low 6 bits = 0x0E (ADD in Lua)
        assert opcode == 0x0E
        valid, data = unit.rop()
        assert valid and data == 0x0E

    def test_default_mask_is_full_word(self, unit):
        assert unit.mask() == 0xFFFF_FFFF

    def test_mask_truncated_to_32_bits(self, unit):
        unit.setmask(0x1_0000_00FF)
        assert unit.mask() == 0xFF

    def test_per_table_masks(self, unit):
        unit.setmask(0x3F, table=0)
        unit.setmask(0xFF, table=1)
        assert unit.load_op(0x1CE, table=0) == 0x0E
        assert unit.load_op(0x1CE, table=1) == 0xCE


class TestBopJru:
    def test_bop_invalid_rop_misses(self, unit):
        assert unit.bop() is None

    def test_slow_path_then_fast_path(self, unit):
        unit.setmask(0x3F)
        unit.load_op(13)
        assert unit.bop() is None       # no JTE yet: slow path
        valid, _ = unit.rop()
        assert valid                    # Rop stays valid for jru
        assert unit.jru(0x7000)         # installs the JTE, invalidates Rop
        assert not unit.rop()[0]
        unit.load_op(13)
        assert unit.bop() == 0x7000     # fast path
        assert not unit.rop()[0]        # bop hit invalidates Rop

    def test_jru_without_valid_rop_is_noop(self, unit):
        assert not unit.jru(0x7000)
        assert unit.btb.jte_count == 0

    def test_tables_are_independent(self, unit):
        unit.load_op(5, table=0)
        unit.jru(0x100, table=0)
        unit.load_op(5, table=1)
        unit.jru(0x200, table=1)
        unit.load_op(5, table=0)
        assert unit.bop(table=0) == 0x100
        unit.load_op(5, table=1)
        assert unit.bop(table=1) == 0x200

    def test_bop_pc_tracking(self, unit):
        unit.set_bop_pc(0x1234, table=2)
        assert unit.bop_pc(table=2) == 0x1234
        assert unit.bop_pc(table=0) == -1


class TestFlush:
    def test_flush_invalidates_rops_and_jtes(self, unit):
        unit.load_op(5)
        unit.jru(0x100)
        unit.load_op(6)                 # valid Rop at flush time
        flushed = unit.jte_flush()
        assert flushed == 1
        assert not unit.rop()[0]
        unit.load_op(5)
        assert unit.bop() is None


class TestErrors:
    def test_table_range_checked(self, unit):
        with pytest.raises(ScdStateError):
            unit.load_op(1, table=3)
        with pytest.raises(ScdStateError):
            unit.setmask(0, table=-1)
        with pytest.raises(ScdStateError):
            unit.bop(table=99)

    def test_zero_tables_rejected(self):
        with pytest.raises(ScdStateError):
            ScdUnit(BranchTargetBuffer(8, 2), tables=0)
