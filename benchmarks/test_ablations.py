"""Ablation benches for the design choices DESIGN.md calls out.

1. Stall-vs-fallthrough bop policy (Section III-B): the stalling scheme is
   SCD's default because the fast dispatch outweighs the bubbles on
   shallow pipelines; fall-through degenerates to the slow path.
2. OS context-switch JTE flushing (Section IV): flushing is cheap at
   realistic scheduling quanta and only hurts under pathological churn.
3. Indirect-predictor landscape (Related Work): the tagged target cache
   and VBBI improve prediction but cannot remove the redundant dispatch
   instructions, so SCD keeps a margin over both.
"""

from repro.harness.experiments import (
    ablation_context_switch,
    ablation_indirect_predictors,
    ablation_stall_policy,
)

from conftest import record, run_once


def test_stall_policy_beats_fallthrough(benchmark):
    result = run_once(benchmark, ablation_stall_policy)
    record(result)
    stall = result.data["stall"]
    fallthrough = result.data["fallthrough"]
    # Fall-through never reaches the fast path: ~no speedup over baseline
    # beyond losing the jump-table prediction churn.
    assert stall > fallthrough
    assert stall > 1.10
    assert fallthrough < 1.10


def test_context_switch_flushing_is_cheap(benchmark):
    result = run_once(benchmark, ablation_context_switch)
    record(result)
    never = result.data["never"]
    realistic = result.data["20000"]
    pathological = result.data["1000"]
    # Realistic quanta: indistinguishable from never switching.
    assert abs(never - realistic) < 0.02
    # Pathological churn: measurably worse, but SCD still wins.
    assert pathological <= realistic + 1e-9
    assert pathological > 1.0


def test_predictors_cannot_match_scd(benchmark):
    result = run_once(benchmark, ablation_indirect_predictors)
    record(result)
    assert result.data["scd"] > result.data["vbbi"]
    assert result.data["scd"] > result.data["ttc"]
    # Both predictor-only schemes still give real speedups.
    assert result.data["vbbi"] > 1.0
    assert result.data["ttc"] > 1.0


def test_software_techniques_trail_scd(benchmark):
    from repro.harness.experiments import ablation_software_techniques

    result = run_once(benchmark, ablation_software_techniques)
    record(result)
    data = result.data
    # Both software techniques remove instructions...
    assert data["threaded"]["inst_ratio"] < 1.0
    assert data["superinst"]["inst_ratio"] < 1.0
    # ...but neither approaches SCD's cycle gains (Related Work claim).
    assert data["scd"]["speedup"] > data["threaded"]["speedup"]
    assert data["scd"]["speedup"] > data["superinst"]["speedup"]
    # Superinstructions themselves stay in the "limited gains" regime.
    assert data["superinst"]["speedup"] < 1.10


def test_switch_policy_tradeoff(benchmark):
    from repro.harness.experiments import ablation_switch_policy

    result = run_once(benchmark, ablation_switch_policy)
    record(result)
    # Both policies keep SCD clearly profitable under heavy switching.
    assert result.data["flush"] > 1.10
    assert result.data["save"] > 1.10


def test_optimal_cap_extension(benchmark):
    from repro.harness.experiments import extension_optimal_cap

    result = run_once(benchmark, extension_optimal_cap)
    record(result)
    for name, row in result.data.items():
        # The tuned cap never loses to the baseline scheme.
        assert row["speedup"] > 1.0, name
        # Ternary search stays cheaper than the exhaustive sweep (8 sims).
        assert row["evaluations"] <= 8
