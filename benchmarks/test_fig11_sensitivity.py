"""Figure 11: sensitivity to BTB size (a,b) and the JTE cap (c,d).

Paper shape: SCD's benefit shrinks with smaller BTBs but remains clearly
positive even at 64 entries; at the smallest BTB, capping the number of
resident JTEs trades fast-path coverage against branch-target capacity.
"""

from repro.harness.experiments import figure11

from conftest import record, run_once


def test_figure11_btb_size_sensitivity(benchmark):
    result = run_once(benchmark, figure11)
    record(result)
    for vm in ("lua", "js"):
        by_size = result.data[f"{vm}_by_size"]
        # "SCD still significantly outperforms the baseline even with a
        # small BTB size (64)".
        assert by_size[64] > 1.05
        # The benefit at the default size is at least as large as at 64.
        assert by_size[256] >= by_size[64] - 0.02
        # All sizes show positive geomean gains.
        assert all(v > 1.0 for v in by_size.values())


def test_figure11_jte_cap_sensitivity(benchmark):
    result = run_once(benchmark, figure11)
    for vm in ("lua", "js"):
        by_cap = result.data[f"{vm}_by_cap"]
        # A tiny cap of 4 JTEs forfeits most of the fast path.
        assert by_cap[4] < by_cap["inf"]
        # A moderate cap (16) retains most of the benefit (the paper's
        # "capping brings only modest speedups compared to [no cap]").
        assert by_cap[16] > by_cap[4]
        assert by_cap[16] > 1.0
