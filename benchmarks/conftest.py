"""Shared helpers for the per-figure/table benchmark harness.

Every ``test_*`` here uses pytest-benchmark's ``benchmark`` fixture with a
single round: the timed quantity is the experiment regeneration itself
(which hits the on-disk result cache when warm).  Each run also records the
rendered table/figure under ``results/`` so the repository keeps the latest
reproduction artifacts.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record(result) -> None:
    """Persist an ExperimentResult's rendered text under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.id}.txt"
    path.write_text(result.text + "\n")


def run_once(benchmark, fn):
    """Run *fn* exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
