"""Shared helpers for the per-figure/table benchmark harness.

Every ``test_*`` here uses pytest-benchmark's ``benchmark`` fixture with a
single round: the timed quantity is the experiment regeneration itself
(which hits the on-disk result cache when warm).  Each run also records the
rendered table/figure under ``results/`` so the repository keeps the latest
reproduction artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_collection_modifyitems(items):
    """Every benchmark regenerates a full experiment: mark them all slow.

    Deselect with ``pytest benchmarks -m "not slow"``; the tier-1 suite
    (``testpaths = tests``) never collects them in the first place.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)


def record(result) -> None:
    """Persist an ExperimentResult's rendered text under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.id}.txt"
    path.write_text(result.text + "\n")


def run_once(benchmark, fn):
    """Run *fn* exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
