"""Figure 3: fraction of dynamic instructions spent in dispatcher code.

Paper claim: "More than 25% of total instructions are spent on the
dispatcher code" for the Lua interpreter (Rohou et al. report 16-33% for
other VMs).
"""

from repro.core.results import geomean
from repro.harness.experiments import figure3

from conftest import record, run_once


def test_figure3_dispatch_fraction(benchmark):
    result = run_once(benchmark, figure3)
    record(result)
    fractions = result.data["fractions"]
    assert len(fractions) == 11
    # Every benchmark sits in the published 16-45% band.
    for fraction in fractions:
        assert 0.16 < fraction < 0.45
    # "More than 25%" on average.
    assert geomean(fractions) > 0.25
