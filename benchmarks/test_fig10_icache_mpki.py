"""Figure 10: instruction-cache MPKI per scheme.

Paper shape: baseline/VBBI/SCD all keep I-cache misses low; jump threading
inflates the code footprint (replicated dispatch tails) and pays more
I-cache misses — dramatically so for the paper's Lua build (0.28 -> 4.80
MPKI).  Our from-scratch interpreter's hot footprint is smaller, so we
assert the direction (threading never improves, and increases footprint)
rather than the paper's magnitude; see EXPERIMENTS.md.
"""

from repro.core.results import geomean
from repro.harness.experiments import figure10
from repro.native.model import get_model

from conftest import record, run_once


def test_figure10_icache_mpki(benchmark):
    result = run_once(benchmark, figure10)
    record(result)
    for vm in ("lua", "js"):
        series = result.data[vm]
        base_geo = series["baseline"][-1]
        scd_geo = series["scd"][-1]
        vbbi_geo = series["vbbi"][-1]
        # SCD and VBBI do not add code: I-cache behaviour ~ baseline.
        assert scd_geo < base_geo * 2 + 0.5
        assert abs(vbbi_geo - base_geo) < 0.2


def test_threading_increases_code_footprint(benchmark):
    """The mechanism behind Figure 10: replicated tails bloat the image."""
    def check():
        sizes = {}
        for vm in ("lua", "js"):
            sizes[vm] = (
                get_model(vm, "baseline").code_size_bytes,
                get_model(vm, "threaded").code_size_bytes,
            )
        return sizes

    sizes = run_once(benchmark, check)
    for vm, (baseline, threaded) in sizes.items():
        assert threaded > baseline * 1.05


def test_js_interpreter_exceeds_icache(benchmark):
    """The 229-handler stack interpreter does not fit a 16 KB I-cache."""
    size = run_once(benchmark, lambda: get_model("js", "baseline").code_size_bytes)
    assert size > 16 * 1024
