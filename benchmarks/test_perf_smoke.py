"""Dispatch-throughput smoke benchmark and regression guard.

Measures the replay hot path (events/sec through ``simulate``), the
cold-cache wall time of a small grid at ``-j 1`` vs ``-j 4``, and the
cold-record vs warm-replay wall time of a trace-cached sweep; writes the
numbers to ``BENCH_dispatch.json`` at the repo root, and asserts
*generous* floors (events/sec, trace-replay speedup) so CI catches an
order-of-magnitude regression without flaking on slow runners.  Set
``SCD_SKIP_PERF_GUARD=1`` to record numbers without asserting (e.g.
under coverage or emulation).

Run explicitly (not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest -q benchmarks/test_perf_smoke.py
"""

import json
import os
import time
from pathlib import Path

from repro.core.simulation import simulate
from repro.harness.bench import (
    GUARD_FLOORS,
    MIN_BATCH_SPEEDUP,
    MIN_EVENTS_PER_S,
    MIN_KERNEL_SPEEDUP,
    MIN_TRACE_SPEEDUP,
    perf_grid,
    trace_grid,
)
from repro.harness.cache import ResultCache
from repro.harness.parallel import METRICS, SimJob, run_jobs
from repro.vm.capture import set_default_trace_mode

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_dispatch.json"


def _update_bench(section: str, payload: dict) -> None:
    """Merge one section into BENCH_dispatch.json (tests are independent)."""
    record = {}
    if BENCH_PATH.exists():
        try:
            record = json.loads(BENCH_PATH.read_text())
        except ValueError:
            record = {}
    record[section] = payload
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")


# Grids and guard floors are shared with `scd-repro bench` via
# repro.harness.bench — the single source of truth for both.
GRID = perf_grid()
TRACE_GRID = trace_grid()


def _grid_wall(workers: int, root: Path) -> float:
    cache = ResultCache(f"perf-j{workers}", root=root)
    start = time.perf_counter()
    run_jobs(GRID, workers=workers, cache=cache)
    return time.perf_counter() - start


def test_dispatch_throughput_guard(tmp_path):
    # Warm the model assembly so we measure replay, not setup.
    simulate("n-body", vm="lua", scheme="scd", n=50, check_output=False)

    metrics: dict = {}
    simulate("n-body", vm="lua", scheme="scd", scale="sim", metrics=metrics)

    wall_j1 = _grid_wall(1, tmp_path)
    wall_j4 = _grid_wall(4, tmp_path)

    _update_bench("hot_path", {
        "workload": "n-body (lua, scd, sim scale)",
        "events": metrics["events"],
        "wall_s": round(metrics["wall_s"], 3),
        "events_per_s": round(metrics["events_per_s"], 1),
        "sims_per_s": round(1.0 / metrics["wall_s"], 3),
    })
    _update_bench("fanout_cold_cache", {
        "grid_points": len(GRID),
        "wall_s_j1": round(wall_j1, 3),
        "wall_s_j4": round(wall_j4, 3),
        "speedup_j4_over_j1": round(wall_j1 / wall_j4, 3),
        "cpu_count": os.cpu_count(),
    })
    _update_bench("guard", {
        **GUARD_FLOORS,
        "skipped": bool(os.environ.get("SCD_SKIP_PERF_GUARD")),
    })

    if os.environ.get("SCD_SKIP_PERF_GUARD"):
        return
    assert metrics["events_per_s"] >= MIN_EVENTS_PER_S, (
        f"replay hot path regressed: {metrics['events_per_s']:.0f} events/s "
        f"< {MIN_EVENTS_PER_S:.0f} (see {BENCH_PATH.name})"
    )


def test_trace_replay_speedup(tmp_path):
    """Cold-record vs warm-replay sweep over the 8-point TRACE_GRID.

    The cold sweep interprets every grid point while recording traces;
    the warm sweep resolves the same points from the recorded traces
    (distinct result-cache names, shared root, so result-cache hits
    cannot mask the comparison).  Asserts byte-identical results, a
    blended >= MIN_TRACE_SPEEDUP, and a replay-throughput floor.
    """
    # Warm the model assembly so the cold sweep measures interpretation.
    simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)

    try:
        METRICS.reset()
        set_default_trace_mode("record")
        start = time.perf_counter()
        cold = run_jobs(
            TRACE_GRID, workers=1,
            cache=ResultCache("perf-trace-cold", root=tmp_path),
        )
        wall_cold = time.perf_counter() - start
        events_interpreted = METRICS.events_interpreted

        METRICS.reset()
        set_default_trace_mode("replay")
        start = time.perf_counter()
        warm = run_jobs(
            TRACE_GRID, workers=1,
            cache=ResultCache("perf-trace-warm", root=tmp_path),
        )
        wall_warm = time.perf_counter() - start
        replay_rate = (
            METRICS.events_replayed / METRICS.replay_wall_s
            if METRICS.replay_wall_s > 0 else 0.0
        )
        memo_events = METRICS.memo_events

        # Second warm sweep, fresh result cache, same root: the harness
        # auto-wires a MemoStore per cache root, so this sweep imports
        # the memo tables the first warm sweep persisted and skips the
        # warm-up chunks a brand-new session would otherwise re-simulate.
        METRICS.reset()
        start = time.perf_counter()
        warm2 = run_jobs(
            TRACE_GRID, workers=1,
            cache=ResultCache("perf-trace-warm2", root=tmp_path),
        )
        wall_warm2 = time.perf_counter() - start
        replay_rate_persisted = (
            METRICS.events_replayed / METRICS.replay_wall_s
            if METRICS.replay_wall_s > 0 else 0.0
        )
        memo_loaded = METRICS.memo_loaded
    finally:
        set_default_trace_mode(None)

    # Replay must be invisible in the numbers: byte-identical stats.
    assert warm == cold
    assert warm2 == cold
    # The persisted memo actually fed the second session.
    assert memo_loaded > 0

    speedup = wall_cold / wall_warm if wall_warm > 0 else float("inf")
    _update_bench("trace_replay", {
        "grid_points": len(TRACE_GRID),
        "events": METRICS.events_replayed,
        "wall_s_cold_record": round(wall_cold, 3),
        "wall_s_warm_replay": round(wall_warm, 3),
        "wall_s_warm_replay_memo_persisted": round(wall_warm2, 3),
        "speedup_warm_over_cold": round(speedup, 3),
        "events_interpreted_cold": events_interpreted,
        "replay_events_per_s": round(replay_rate, 1),
        "replay_events_per_s_memo_persisted": round(replay_rate_persisted, 1),
        "memo_events_skipped": memo_events,
        "memo_entries_loaded": memo_loaded,
    })

    # The memo must engage on the steady-state loop points.
    assert memo_events > 0

    if os.environ.get("SCD_SKIP_PERF_GUARD"):
        return
    assert speedup >= MIN_TRACE_SPEEDUP, (
        f"warm trace replay only {speedup:.2f}x over cold interpretation "
        f"< {MIN_TRACE_SPEEDUP:.1f}x (see {BENCH_PATH.name})"
    )
    assert replay_rate >= MIN_EVENTS_PER_S, (
        f"trace replay throughput regressed: {replay_rate:.0f} events/s "
        f"< {MIN_EVENTS_PER_S:.0f} (see {BENCH_PATH.name})"
    )


def test_kernel_replay_speedup(tmp_path):
    """Warm-replay sweep with exec-compiled kernels on vs off.

    Records the TRACE_GRID once, then replays it twice — kernels enabled
    and disabled — through distinct result caches sharing one trace root.
    Asserts the two sweeps are byte-identical (the kernels' core
    contract) and that the compiled path is faster by
    ``MIN_KERNEL_SPEEDUP``; the compiled table must also have carried the
    overwhelming share of events.
    """
    simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)

    def with_kernel(enabled: bool):
        # Batch replay is pinned off on both sides so this section
        # isolates the kernel layer; test_batch_replay_speedup measures
        # the batch layer against this kernel-only baseline.
        return tuple(
            SimJob(j.workload, j.vm, j.scheme,
                   kwargs=j.kwargs
                   + (("use_kernel", enabled), ("use_batch", False)))
            for j in TRACE_GRID
        )

    # Record once, then give each sweep its own cache root with a copy of
    # the recorded traces: the harness auto-wires a MemoStore per root,
    # and a shared root would let the second sweep import the first's
    # persisted memo tables — a (welcome) warm-start that would corrupt
    # this on/off comparison.
    import shutil

    from repro.harness.cache import CACHE_VERSION

    shared = tmp_path / "shared"
    try:
        set_default_trace_mode("record")
        run_jobs(
            TRACE_GRID, workers=1,
            cache=ResultCache("perf-kernel-seed", root=shared),
        )
        traces = shared / f"v{CACHE_VERSION}" / "traces"
        for side in ("on", "off"):
            shutil.copytree(
                traces, tmp_path / side / f"v{CACHE_VERSION}" / "traces"
            )

        set_default_trace_mode("replay")
        METRICS.reset()
        start = time.perf_counter()
        kernel_on = run_jobs(
            with_kernel(True), workers=1,
            cache=ResultCache("perf-kernel-on", root=tmp_path / "on"),
        )
        wall_on = time.perf_counter() - start
        rate_on = (
            METRICS.events_replayed / METRICS.replay_wall_s
            if METRICS.replay_wall_s > 0 else 0.0
        )
        kernel_events = METRICS.kernel_events
        fallback_events = METRICS.fallback_events

        METRICS.reset()
        start = time.perf_counter()
        kernel_off = run_jobs(
            with_kernel(False), workers=1,
            cache=ResultCache("perf-kernel-off", root=tmp_path / "off"),
        )
        wall_off = time.perf_counter() - start
        rate_off = (
            METRICS.events_replayed / METRICS.replay_wall_s
            if METRICS.replay_wall_s > 0 else 0.0
        )
    finally:
        set_default_trace_mode(None)

    # The kernels' contract: byte-identical results, only faster.
    assert kernel_on == kernel_off

    speedup = wall_off / wall_on if wall_on > 0 else float("inf")
    _update_bench("kernel_replay", {
        "grid_points": len(TRACE_GRID),
        "wall_s_kernel_on": round(wall_on, 3),
        "wall_s_kernel_off": round(wall_off, 3),
        "speedup_kernel_over_interpreted": round(speedup, 3),
        "replay_events_per_s_kernel_on": round(rate_on, 1),
        "replay_events_per_s_kernel_off": round(rate_off, 1),
        "kernel_events": kernel_events,
        "fallback_events": fallback_events,
    })

    # The compiled table must carry the hot path, not the fallbacks.
    assert kernel_events > 10 * fallback_events

    if os.environ.get("SCD_SKIP_PERF_GUARD"):
        return
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"compiled kernels only {speedup:.2f}x over interpreted replay "
        f"< {MIN_KERNEL_SPEEDUP:.1f}x (see {BENCH_PATH.name})"
    )


def test_batch_replay_speedup(tmp_path):
    """Warm-replay sweep with superblock batch replay on vs off.

    Both sides run with the exec-compiled kernels enabled; the batch-on
    side additionally segments periodic trace runs into superblocks and
    replays each repetition through one chunk-compiled function.  Records
    the TRACE_GRID once, replays it through two isolated cache roots
    (copied traces, so neither side inherits the other's persisted
    steady-state memos), and asserts byte-identity plus the
    ``MIN_BATCH_SPEEDUP`` floor over the per-event kernel path.
    """
    simulate("fibo", vm="lua", scheme="scd", n=8, check_output=False)

    def with_batch(enabled: bool):
        return tuple(
            SimJob(j.workload, j.vm, j.scheme,
                   kwargs=j.kwargs + (("use_batch", enabled),))
            for j in TRACE_GRID
        )

    import shutil

    from repro.harness.cache import CACHE_VERSION

    shared = tmp_path / "shared"
    try:
        set_default_trace_mode("record")
        run_jobs(
            TRACE_GRID, workers=1,
            cache=ResultCache("perf-batch-seed", root=shared),
        )
        traces = shared / f"v{CACHE_VERSION}" / "traces"
        for side in ("on", "off"):
            shutil.copytree(
                traces, tmp_path / side / f"v{CACHE_VERSION}" / "traces"
            )

        set_default_trace_mode("replay")
        METRICS.reset()
        start = time.perf_counter()
        batch_on = run_jobs(
            with_batch(True), workers=1,
            cache=ResultCache("perf-batch-on", root=tmp_path / "on"),
        )
        wall_on = time.perf_counter() - start
        rate_on = (
            METRICS.events_replayed / METRICS.replay_wall_s
            if METRICS.replay_wall_s > 0 else 0.0
        )
        batch_events = METRICS.batch_events
        superblocks = METRICS.superblocks

        METRICS.reset()
        start = time.perf_counter()
        batch_off = run_jobs(
            with_batch(False), workers=1,
            cache=ResultCache("perf-batch-off", root=tmp_path / "off"),
        )
        wall_off = time.perf_counter() - start
        rate_off = (
            METRICS.events_replayed / METRICS.replay_wall_s
            if METRICS.replay_wall_s > 0 else 0.0
        )
    finally:
        set_default_trace_mode(None)

    # The batch layer's contract: byte-identical results, only faster.
    assert batch_on == batch_off

    speedup = wall_off / wall_on if wall_on > 0 else float("inf")
    _update_bench("batch_replay", {
        "grid_points": len(TRACE_GRID),
        "wall_s_batch_on": round(wall_on, 3),
        "wall_s_batch_off": round(wall_off, 3),
        "speedup_batch_over_kernel": round(speedup, 3),
        "replay_events_per_s_batch_on": round(rate_on, 1),
        "replay_events_per_s_batch_off": round(rate_off, 1),
        "batch_events": batch_events,
        "superblocks": superblocks,
    })

    # The superblocks must carry the steady-state share of the events.
    assert batch_events > 0
    assert superblocks > 0

    if os.environ.get("SCD_SKIP_PERF_GUARD"):
        return
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batch replay only {speedup:.2f}x over per-event kernel replay "
        f"< {MIN_BATCH_SPEEDUP:.1f}x (see {BENCH_PATH.name})"
    )
