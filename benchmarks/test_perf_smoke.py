"""Dispatch-throughput smoke benchmark and regression guard.

Measures the replay hot path (events/sec through ``simulate``) and the
cold-cache wall time of a small grid at ``-j 1`` vs ``-j 4``, writes the
numbers to ``BENCH_dispatch.json`` at the repo root, and asserts a
*generous* events/sec floor so CI catches an order-of-magnitude hot-path
regression without flaking on slow runners.  Set ``SCD_SKIP_PERF_GUARD=1``
to record numbers without asserting (e.g. under coverage or emulation).

Run explicitly (not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest -q benchmarks/test_perf_smoke.py
"""

import json
import os
import time
from pathlib import Path

from repro.core.simulation import simulate
from repro.harness.cache import ResultCache
from repro.harness.parallel import SimJob, run_jobs

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_dispatch.json"

#: Extremely generous floor — the replay path does ~30k events/s on a
#: single 2020s laptop core; anything under this means the hot path
#: regressed by an order of magnitude (or the runner is pathological,
#: in which case set SCD_SKIP_PERF_GUARD=1).
MIN_EVENTS_PER_S = 3000.0

GRID = tuple(
    SimJob(w, "lua", scheme, kwargs=(("check_output", False), ("n", 10)))
    for w in ("fibo", "n-sieve", "random", "pidigits")
    for scheme in ("baseline", "scd")
)


def _grid_wall(workers: int, root: Path) -> float:
    cache = ResultCache(f"perf-j{workers}", root=root)
    start = time.perf_counter()
    run_jobs(GRID, workers=workers, cache=cache)
    return time.perf_counter() - start


def test_dispatch_throughput_guard(tmp_path):
    # Warm the model assembly so we measure replay, not setup.
    simulate("n-body", vm="lua", scheme="scd", n=50, check_output=False)

    metrics: dict = {}
    simulate("n-body", vm="lua", scheme="scd", scale="sim", metrics=metrics)

    wall_j1 = _grid_wall(1, tmp_path)
    wall_j4 = _grid_wall(4, tmp_path)

    record = {
        "hot_path": {
            "workload": "n-body (lua, scd, sim scale)",
            "events": metrics["events"],
            "wall_s": round(metrics["wall_s"], 3),
            "events_per_s": round(metrics["events_per_s"], 1),
            "sims_per_s": round(1.0 / metrics["wall_s"], 3),
        },
        "fanout_cold_cache": {
            "grid_points": len(GRID),
            "wall_s_j1": round(wall_j1, 3),
            "wall_s_j4": round(wall_j4, 3),
            "speedup_j4_over_j1": round(wall_j1 / wall_j4, 3),
            "cpu_count": os.cpu_count(),
        },
        "guard": {
            "min_events_per_s": MIN_EVENTS_PER_S,
            "skipped": bool(os.environ.get("SCD_SKIP_PERF_GUARD")),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if os.environ.get("SCD_SKIP_PERF_GUARD"):
        return
    assert metrics["events_per_s"] >= MIN_EVENTS_PER_S, (
        f"replay hot path regressed: {metrics['events_per_s']:.0f} events/s "
        f"< {MIN_EVENTS_PER_S:.0f} (see {BENCH_PATH.name})"
    )
