"""Figure 9: branch misprediction MPKI per scheme.

Paper shape: SCD cuts Lua branch MPKI by ~70.6% (JS ~28.1%); VBBI achieves
a comparable or larger cut (77.5% on Lua) but without the instruction-count
benefit; the baseline stays high.
"""

from repro.harness.experiments import figure9

from conftest import record, run_once


def test_figure9_branch_mpki(benchmark):
    result = run_once(benchmark, figure9)
    record(result)
    # Per-VM reduction bands from the paper: Lua -70.6%, JS -28.1% (the JS
    # interpreter keeps its guest-level IFEQ/AND/OR and call/return
    # mispredictions, which SCD does not touch).
    bands = {"lua": 0.5, "js": 0.85}
    for vm in ("lua", "js"):
        series = result.data[vm]
        base_geo = series["baseline"][-1]
        scd_geo = series["scd"][-1]
        vbbi_geo = series["vbbi"][-1]
        # Baseline interpreters mispredict heavily.
        assert base_geo > 10.0
        # SCD removes a large share of mispredictions.
        assert scd_geo < base_geo * bands[vm]
        # VBBI removes at least as many dispatch mispredictions as SCD
        # (paper: -77.5% vs -70.6% on Lua) but no instructions.
        assert vbbi_geo <= scd_geo * 1.05
        # Neither eliminates guest-level branches entirely.
        assert scd_geo > 0.0


def test_figure9_lua_reduction_band(benchmark):
    result = run_once(benchmark, figure9)
    series = result.data["lua"]
    reduction = 1 - series["scd"][-1] / series["baseline"][-1]
    # Paper: 70.6% for Lua; allow a generous band.
    assert 0.55 < reduction <= 1.0
