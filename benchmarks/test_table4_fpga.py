"""Table IV: Lua on the RISC-V Rocket machine (FPGA-scale inputs).

Paper geomeans: jump threading saves 4.84% of instructions for +0.01%
speedup; SCD saves 10.44% of instructions for +12.04% speedup.  Individual
jump-threading speedups range -11.1% (n-sieve) to +5.9%.
"""

from repro.core.results import geomean
from repro.harness.experiments import table4

from conftest import record, run_once


def test_table4_fpga_shape(benchmark):
    result = run_once(benchmark, table4)
    record(result)
    summary = result.data["summary"]
    # SCD instruction savings near the paper's 10.44% (+-6pp).
    assert 0.08 < summary["scd"]["savings"] < 0.20
    # SCD speedup near the paper's 12.04% (+-10pp).
    assert 0.08 < summary["scd"]["speedup"] < 0.26
    # Jump threading saves a few percent of instructions (paper 4.84%)...
    assert 0.02 < summary["threaded"]["savings"] < 0.07
    # ...but buys far less cycle time than SCD (paper: ~0%).
    assert summary["threaded"]["speedup"] < summary["scd"]["speedup"] * 0.8


def test_table4_per_benchmark_invariants(benchmark):
    result = run_once(benchmark, table4)
    savings = result.data["savings"]
    speedups = result.data["speedups"]
    # SCD saves instructions on every benchmark (Table IV column 10).
    assert all(s > 0.03 for s in savings["scd"])
    # SCD speeds every benchmark up (Table IV column 11: 6.1%-22.7%).
    assert all(s > 0.0 for s in speedups["scd"])
    # SCD dominates threading everywhere on instruction savings.
    for scd_saving, threaded_saving in zip(savings["scd"], savings["threaded"]):
        assert scd_saving > threaded_saving


def test_table4_mandelbrot_is_top_saver(benchmark):
    """Paper: mandelbrot shows the largest SCD saving (17.95%) and
    speedup (22.67%) on the FPGA."""
    result = run_once(benchmark, table4)
    workloads = result.data["workloads"]
    scd_savings = dict(zip(workloads, result.data["savings"]["scd"]))
    top3 = sorted(scd_savings, key=scd_savings.get, reverse=True)[:3]
    assert "mandelbrot" in top3
