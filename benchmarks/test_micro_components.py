"""Microbenchmarks of the substrate components (pytest-benchmark timing).

These are conventional performance benchmarks (ops/second of the simulator
building blocks), useful for tracking regressions in the hot paths that
dominate end-to-end simulation time.
"""

import random

from repro.isa import assemble
from repro.native.model import ModelRunner, get_model
from repro.uarch import Machine, cortex_a5
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import Cache
from repro.uarch.predictors import TournamentPredictor
from repro.vm.lua import LuaVM


def test_btb_lookup_insert(benchmark):
    btb = BranchTargetBuffer(entries=256, ways=2)
    rng = random.Random(1)
    pcs = [rng.randrange(0, 1 << 16) * 4 for _ in range(512)]

    def work():
        for pc in pcs:
            if btb.lookup(pc) is None:
                btb.insert(pc, pc + 8)

    benchmark(work)


def test_jte_lookup(benchmark):
    btb = BranchTargetBuffer(entries=256, ways=2)
    for opcode in range(47):
        btb.insert_jte(opcode, 0x7000 + opcode * 64)

    def work():
        for opcode in range(47):
            assert btb.lookup_jte(opcode) is not None

    benchmark(work)


def test_tournament_predictor(benchmark):
    predictor = TournamentPredictor()
    rng = random.Random(2)
    stream = [(rng.randrange(0, 4096) * 4, rng.random() < 0.8) for _ in range(1024)]

    def work():
        for pc, taken in stream:
            predictor.observe(pc, taken)

    benchmark(work)


def test_icache_line_stream(benchmark):
    cache = Cache(16 * 1024, 2, 64)
    lines = [(i * 7) % 1024 for i in range(2048)]

    def work():
        for line in lines:
            cache.access_line(line)

    benchmark(work)


def test_assembler_throughput(benchmark):
    text = "\n".join(
        f"L{i}:\n    add r1, r2, r3\n    ldq r4, 0(r5)\n    beq r1, L{i}"
        for i in range(100)
    )
    benchmark(lambda: assemble(text))


def test_lua_vm_functional_rate(benchmark):
    source = "var s = 0; for i = 1, 500 { s = s + i * i; } print(s);"
    vm = LuaVM.from_source(source)

    def work():
        fresh = LuaVM.from_source(source)
        return fresh.run()

    assert benchmark(work) == ["41791750"]


def test_end_to_end_replay_rate(benchmark):
    """Guest steps per second through the full model stack."""
    source = "var s = 0; for i = 1, 200 { s = s + i; } print(s);"
    model = get_model("lua", "scd")

    def work():
        machine = Machine(cortex_a5())
        runner = ModelRunner(model, machine)
        runner.start()
        vm = LuaVM.from_source(source)
        vm.run(trace=runner.on_event)
        runner.finish()
        return machine.finalize().instructions

    assert benchmark(work) > 0
