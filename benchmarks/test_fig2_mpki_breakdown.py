"""Figure 2: branch MPKI breakdown for the baseline Lua interpreter.

Paper claim: most baseline branch mispredictions are attributable to the
dispatch indirect jump.
"""

from repro.harness.experiments import figure2

from conftest import record, run_once


def test_figure2_dispatch_dominates_mispredictions(benchmark):
    result = run_once(benchmark, figure2)
    record(result)
    workloads = result.data["workloads"]
    dispatch = result.data["dispatch_mpki"]
    other = result.data["other_mpki"]
    assert len(workloads) == 11
    for name, d, o in zip(workloads, dispatch, other):
        # The paper's Figure 2: the dispatch jump dominates every benchmark.
        assert d > o, f"{name}: dispatch {d} should dominate other {o}"
        # Baseline interpreters live in the tens-of-MPKI regime.
        assert 5.0 < d + o < 80.0, f"{name}: total MPKI {d + o} out of range"
