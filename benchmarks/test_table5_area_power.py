"""Table V: area/power overhead and the EDP headline.

Paper: SCD adds +0.72% total area and +1.09% total power (BTB module:
+21.6% area, +11.7% power) and improves the Lua interpreter's EDP by 24.2%
at the 12.04% FPGA geomean speedup.
"""

from repro.harness.experiments import table5

from conftest import record, run_once


def test_table5_area_power_edp(benchmark):
    result = run_once(benchmark, table5)
    record(result)
    data = result.data
    # Area/power deltas within a tight band of the paper's synthesis.
    assert 0.005 < data["total_area_delta"] < 0.010     # paper 0.0072
    assert 0.008 < data["total_power_delta"] < 0.014    # paper 0.0109
    assert 0.17 < data["btb_area_delta"] < 0.26         # paper 0.216
    assert 0.08 < data["btb_power_delta"] < 0.15        # paper 0.117
    # EDP improvement: paper 24.2% at a 12.04% speedup.  Our measured
    # speedup differs slightly, so test the band.
    assert 0.15 < data["edp_improvement"] < 0.55


def test_table5_uses_measured_speedup(benchmark):
    result = run_once(benchmark, table5)
    assert result.data["scd_speedup"] > 1.05
