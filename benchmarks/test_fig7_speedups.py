"""Figure 7: overall speedups of jump threading, VBBI and SCD.

Paper shape (Cortex-A5-class simulator):
  Lua: SCD +19.9% geomean (max +38.4%), VBBI +8.8%, jump threading -1.6%.
  JS : SCD +14.1% geomean (max +37.2%), VBBI +5.3%, jump threading +7.3%.

We assert the *shape*: SCD wins clearly on both VMs, beats VBBI by roughly
2x, and lands in the published band.  (Our jump-threaded variant keeps a
hot code footprint inside the 16 KB I-cache, so it does not reproduce the
paper's Lua slowdown; see EXPERIMENTS.md.)
"""

from repro.harness.experiments import figure7

from conftest import record, run_once


def test_figure7_speedups(benchmark):
    result = run_once(benchmark, figure7)
    record(result)
    for vm in ("lua", "js"):
        speedups = result.data[vm]
        geo = {scheme: speedups[scheme][-1] for scheme in speedups}
        # SCD wins, decisively, on both interpreters.
        assert geo["scd"] > geo["vbbi"]
        assert geo["scd"] > geo["threaded"]
        # SCD geomean in the paper's band (lua 19.9%, js 14.1%; ours +-7pp).
        assert 1.10 < geo["scd"] < 1.30, (vm, geo["scd"])
        # VBBI: modest gains only (the paper's core argument).
        assert 1.01 < geo["vbbi"] < 1.15, (vm, geo["vbbi"])
        # SCD beats the state-of-the-art predictor by a wide margin.
        assert (geo["scd"] - 1) > 1.5 * (geo["vbbi"] - 1)


def test_figure7_per_benchmark_maxima(benchmark):
    result = run_once(benchmark, figure7)
    for vm, paper_max in (("lua", 1.384), ("js", 1.372)):
        scd = result.data[vm]["scd"][:-1]
        # Every single benchmark gains from SCD...
        assert min(scd) > 1.0
        # ...and the best one approaches the paper's maximum band.
        assert max(scd) > 1.17
        assert max(scd) < paper_max + 0.08
