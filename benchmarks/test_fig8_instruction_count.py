"""Figure 8: normalized dynamic instruction count.

Paper shape: SCD removes ~10.2% (Lua) / ~9.6% (JS) of all dynamic host
instructions; VBBI removes none (it only predicts better); jump threading
removes a few percent.
"""

from repro.harness.experiments import figure8

from conftest import record, run_once


def test_figure8_instruction_counts(benchmark):
    result = run_once(benchmark, figure8)
    record(result)
    for vm in ("lua", "js"):
        norm = result.data[vm]
        scd_geo = norm["scd"][-1]
        threaded_geo = norm["threaded"][-1]
        vbbi_geo = norm["vbbi"][-1]
        # VBBI executes exactly the baseline instruction stream.
        assert vbbi_geo == 1.0
        # SCD's reduction lands in the paper's band (about 10%, +-5pp).
        assert 0.82 < scd_geo < 0.95, (vm, scd_geo)
        # Jump threading saves less than SCD.
        assert scd_geo < threaded_geo < 1.0
        # Ordering per benchmark, not only in aggregate.
        for i, value in enumerate(norm["scd"][:-1]):
            assert value <= norm["threaded"][i] + 1e-9


def test_figure8_scd_saving_biggest_for_short_handlers(benchmark):
    """Loop-dense benchmarks (mandelbrot) save the most, as in Table IV."""
    result = run_once(benchmark, figure8)
    workloads = result.data["workloads"]
    scd = dict(zip(workloads, result.data["lua"]["scd"]))
    # mandelbrot was the paper's best saver (17.95% on FPGA).
    assert scd["mandelbrot"] <= min(scd["fibo"], scd["binary-trees"]) + 0.02
