"""Section VI-C2: SCD on a higher-end dual-issue in-order core.

Paper: on a Cortex-A8-like configuration (dual issue, 32 KB I-cache,
256 KB L2, 512-entry BTB) SCD still achieves geomean speedups of 17.6%
(Lua) and 15.2% (JS) with ~10% instruction reductions — the benefit does
not evaporate on a beefier in-order core.
"""

from repro.harness.experiments import higher_end

from conftest import record, run_once


def test_higher_end_core(benchmark):
    result = run_once(benchmark, higher_end)
    record(result)
    for vm in ("lua", "js"):
        data = result.data[vm]
        # Clear geomean speedups remain (paper: 17.6% / 15.2%).
        assert 1.08 < data["speedup_geomean"] < 1.35
        # Instruction reductions comparable to the A5 runs (paper ~10%).
        assert 0.05 < data["inst_reduction_geomean"] < 0.20
