#!/usr/bin/env python3
"""Run your own script through the full SCD stack.

Demonstrates the library as a downstream user would drive it: write a
scriptlet program, execute it functionally on *both* guest VMs, inspect the
compiled bytecode of each, and then measure how SCD accelerates its
dispatch on the embedded-core model.

Usage::

    python examples/custom_interpreter.py [path/to/script.sl]
"""

import sys

from repro import simulate, speedup
from repro.lang import parse
from repro.vm.js import JsVM, compile_module_js
from repro.vm.js.opcodes import disassemble as js_disassemble
from repro.vm.lua import LuaVM, compile_module
from repro.vm.lua.opcodes import disassemble as lua_disassemble

DEFAULT_SCRIPT = """
# Collatz trajectory lengths: a branchy integer workload.
fn collatz_len(n) {
    var steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n // 2; }
        else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}
var best_n = 0;
var best = 0;
for n = 1, 120 {
    var length = collatz_len(n);
    if (length > best) {
        best = length;
        best_n = n;
    }
}
print("longest trajectory below 120: n=" .. best_n .. " (" .. best .. " steps)");
"""


def main() -> int:
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as handle:
            source = handle.read()
    else:
        source = DEFAULT_SCRIPT

    module = parse(source)

    # --- functional execution on both VMs -------------------------------
    lua_vm = LuaVM.from_source(source)
    lua_output = lua_vm.run()
    js_vm = JsVM.from_source(source)
    js_output = js_vm.run()
    assert lua_output == js_output, "guest VMs disagree!"

    print("guest output:")
    for line in lua_output:
        print(f"  {line}")
    print()
    print(f"register-VM (Lua-like) bytecodes executed: {lua_vm.steps:,}")
    print(f"stack-VM (JS-like) bytecodes executed    : {js_vm.steps:,}")

    # --- peek at the compiled code --------------------------------------
    lua_module = compile_module(module)
    print("\nfirst 8 Lua-like instructions of main():")
    for word in lua_module.main.code[:8]:
        print(f"  {lua_disassemble(word)}")

    js_module = compile_module_js(module)
    print("\nfirst 8 JS-like instructions of main():")
    for line in js_disassemble(bytes(js_module.main.code), js_module.main.atoms)[:8]:
        print(f"  {line}")

    # --- timing on the embedded core -------------------------------------
    print("\ndispatch schemes on the Cortex-A5 model:")
    for vm_kind in ("lua", "js"):
        base = simulate("custom", vm=vm_kind, scheme="baseline", source=source)
        scd = simulate("custom", vm=vm_kind, scheme="scd", source=source)
        print(
            f"  {vm_kind:3} interpreter: SCD speedup {speedup(base, scd):.3f}x, "
            f"instructions {base.instructions:,} -> {scd.instructions:,}, "
            f"bop hit rate {scd.bop_hit_rate:.1%}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
