#!/usr/bin/env python3
"""Profile a workload's bytecode stream and evaluate superinstructions.

The classic software answer to dispatch overhead (Ertl & Gregg, cited in
the paper's Related Work) is to fuse hot adjacent bytecode pairs into
superinstructions: one dispatch runs two handlers.  This example shows the
whole pipeline a VM engineer would run:

1. profile the dynamic opcode and pair mix of a workload;
2. check how much of the stream the build's fused-pair table covers;
3. measure superinstructions against jump threading and SCD.

The punchline is the paper's: software fusion removes *dispatches* but not
the per-dispatch redundant computation, and the fused bodies bloat the
I-cache — SCD keeps a wide margin.

Usage::

    python examples/profile_and_fuse.py [workload] [vm]
"""

import sys

from repro import simulate, speedup, workload_names
from repro.native.model import get_model
from repro.vm.profile import profile_workload


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "mandelbrot"
    vm = sys.argv[2] if len(sys.argv) > 2 else "lua"
    if bench not in workload_names():
        print(f"unknown workload {bench!r}")
        return 1

    profile = profile_workload(bench, vm=vm)
    print(f"{bench!r} on the {vm} VM: {profile.steps:,} bytecodes\n")
    print("hottest opcodes:")
    for name, count in profile.top_opcodes(8):
        print(f"  {name:12} {count:>8,}  ({count / profile.steps:6.1%})")
    print("\nhottest adjacent pairs (superinstruction candidates):")
    for name, count in profile.top_pairs(8):
        print(f"  {name:24} {count:>8,}")

    fused_pairs = list(get_model(vm, "superinst").fused)
    coverage = profile.pair_coverage(fused_pairs)
    print(
        f"\nthis build fuses {len(fused_pairs)} pairs covering up to "
        f"{coverage:.1%} of the dynamic stream"
    )

    print("\nmeasured on the Cortex-A5 model:")
    base = simulate(bench, vm=vm, scheme="baseline")
    print(f"  {'scheme':12} {'speedup':>8} {'inst ratio':>11} {'I$ MPKI':>8}")
    for scheme in ("threaded", "superinst", "scd"):
        result = simulate(bench, vm=vm, scheme=scheme)
        print(
            f"  {scheme:12} {speedup(base, result):>8.3f} "
            f"{result.instructions / base.instructions:>11.3f} "
            f"{result.icache_mpki:>8.2f}"
        )
    print(
        "\nReading: superinstructions cut instructions but pay code bloat"
        "\nand keep the per-dispatch decode/bound/calc work; SCD removes"
        "\nthat work in hardware without touching the code layout."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
