#!/usr/bin/env python3
"""Quickstart: measure what Short-Circuit Dispatch buys one benchmark.

Runs the ``fibo`` workload on the Lua-like interpreter under all four
evaluation schemes of the paper (baseline switch dispatch, jump threading,
the VBBI indirect predictor, and SCD) on the Cortex-A5-class machine of
Table II, then prints a side-by-side comparison.

Usage::

    python examples/quickstart.py [workload] [vm]
"""

import sys

from repro import SCHEMES, simulate, speedup, workload_names


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "fibo"
    vm = sys.argv[2] if len(sys.argv) > 2 else "lua"
    if bench not in workload_names():
        print(f"unknown workload {bench!r}; pick one of: {', '.join(workload_names())}")
        return 1

    print(f"Simulating {bench!r} on the {vm} interpreter (Cortex-A5 model)...\n")
    results = {
        scheme: simulate(bench, vm=vm, scheme=scheme) for scheme in SCHEMES
    }
    base = results["baseline"]

    print(f"guest bytecodes executed: {base.guest_steps:,}")
    print(f"guest output            : {base.output[0]!r}"
          + (" ..." if len(base.output) > 1 else ""))
    print()
    header = (
        f"{'scheme':10} {'host insts':>12} {'cycles':>12} {'speedup':>8} "
        f"{'branch MPKI':>12} {'I$ MPKI':>8} {'dispatch':>9}"
    )
    print(header)
    print("-" * len(header))
    for scheme, result in results.items():
        print(
            f"{scheme:10} {result.instructions:>12,} {result.cycles:>12,} "
            f"{speedup(base, result):>8.3f} {result.branch_mpki:>12.2f} "
            f"{result.icache_mpki:>8.2f} {result.dispatch_fraction:>8.1%}"
        )

    scd = results["scd"]
    print()
    print(
        f"SCD fast-path (bop) hit rate: {scd.bop_hit_rate:.1%} "
        f"({scd.bop_hits:,} hits / {scd.bop_misses:,} slow-path dispatches)"
    )
    print(
        f"SCD removed {1 - scd.instructions / base.instructions:.1%} of all "
        "host instructions by short-circuiting decode / bound-check / "
        "target-calculation."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
