#!/usr/bin/env python3
"""Explore the BTB-size / JTE-cap trade-off (the paper's Figure 11).

SCD stores jump-table entries *in* the BTB with priority over ordinary
branch targets, so small BTBs can suffer: cold JTEs evict branch targets
and taken branches pay front-end redirects.  This example sweeps BTB size
and the JTE cap for one workload and prints the resulting speedups, plus
the JTE occupancy observed at each point.

Usage::

    python examples/btb_sensitivity.py [workload] [vm]
"""

import sys

from repro import cortex_a5, simulate, speedup, workload_names

BTB_SIZES = (64, 128, 256, 512)
CAPS = (4, 8, 16, 32, None)


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "n-sieve"
    vm = sys.argv[2] if len(sys.argv) > 2 else "lua"
    if bench not in workload_names():
        print(f"unknown workload {bench!r}")
        return 1

    print(f"BTB-size sensitivity for {bench!r} ({vm}), SCD vs. same-size baseline:\n")
    print(f"{'BTB entries':>12} {'baseline cycles':>16} {'SCD cycles':>12} {'speedup':>8}")
    for size in BTB_SIZES:
        config = cortex_a5().with_changes(btb_entries=size)
        base = simulate(bench, vm=vm, scheme="baseline", config=config)
        scd = simulate(bench, vm=vm, scheme="scd", config=config)
        print(
            f"{size:>12} {base.cycles:>16,} {scd.cycles:>12,} "
            f"{speedup(base, scd):>8.3f}"
        )

    smallest = cortex_a5().with_changes(btb_entries=BTB_SIZES[0])
    base = simulate(bench, vm=vm, scheme="baseline", config=smallest)
    print(f"\nJTE-cap sensitivity at BTB={BTB_SIZES[0]} (Figure 11(c,d)):\n")
    print(f"{'JTE cap':>8} {'SCD cycles':>12} {'speedup':>8} {'bop hit rate':>13}")
    for cap in CAPS:
        config = smallest.with_changes(jte_cap=cap)
        scd = simulate(bench, vm=vm, scheme="scd", config=config)
        label = "inf" if cap is None else str(cap)
        print(
            f"{label:>8} {scd.cycles:>12,} {speedup(base, scd):>8.3f} "
            f"{scd.bop_hit_rate:>12.1%}"
        )

    print(
        "\nReading: a tight cap keeps the BTB available for branch targets"
        "\nbut forces more slow-path dispatches; an unbounded JTE population"
        "\nmaximises bop hits but can evict branch targets on small BTBs."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
