#!/usr/bin/env python3
"""OS interaction: the cost of flushing JTEs at context switches.

Section IV: jump-table entries architecturally affect execution (unlike
plain BTB entries, which are mere predictions), so on a context switch the
OS either saves them or — the paper's preferred, cheaper policy — executes
``jte.flush``.  After each switch the interpreter repopulates its JTEs
through slow-path dispatches.

This example sweeps the context-switch interval and shows how the bop hit
rate and the SCD speedup degrade as scheduling gets choppier, including the
pathological case of switching every few hundred bytecodes.
"""

import sys

from repro import simulate, speedup, workload_names

INTERVALS = (None, 50_000, 10_000, 2_000, 500, 100)


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "mandelbrot"
    vm = sys.argv[2] if len(sys.argv) > 2 else "lua"
    if bench not in workload_names():
        print(f"unknown workload {bench!r}")
        return 1

    print(
        f"JTE flushing on context switches, {bench!r} ({vm}):\n"
        f"{'switch every':>14} {'bop hit rate':>13} {'JTE flushes':>12} "
        f"{'SCD speedup':>12}"
    )
    for interval in INTERVALS:
        base = simulate(
            bench, vm=vm, scheme="baseline", context_switch_interval=interval
        )
        scd = simulate(
            bench, vm=vm, scheme="scd", context_switch_interval=interval
        )
        label = "never" if interval is None else f"{interval} ops"
        flushes = scd.to_dict().get("jte_inserts", 0)
        print(
            f"{label:>14} {scd.bop_hit_rate:>12.1%} "
            f"{scd.jte_inserts:>12,} {speedup(base, scd):>12.3f}"
        )

    print(
        "\nReading: each flush forces the interpreter through the slow path"
        "\n(jru refills) once per live opcode; with realistic quanta the"
        "\nrepopulation cost is negligible, exactly as Section IV argues."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
