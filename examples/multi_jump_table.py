#!/usr/bin/env python3
"""Multiple jump tables: SCD on an interpreter with several dispatch sites.

Section IV of the paper extends SCD to track *n* indirect jumps at once by
replicating the (Rop, Rmask, Rbop-pc) register set and widening the J/B bit
to an ID vector.  The JS-like interpreter exercises exactly this: its MAIN,
FUNCALL and END_CASE dispatch sites each own a jump-table branch ID, while
slow-path (UNCOVERED) exits bypass SCD entirely — the reason the paper's
JavaScript speedups trail Lua's.

This example runs one workload on the stack VM, reports per-site dispatch
traffic, and shows what coverage costs by comparing against the Lua VM's
single fully-covered dispatcher.
"""

import sys
from collections import Counter

from repro import simulate, speedup
from repro.vm.js import JsVM
from repro.vm.trace import Site
from repro.workloads import workload


def main() -> int:
    bench = sys.argv[1] if len(sys.argv) > 1 else "binary-trees"
    source = workload(bench).source(scale="sim")

    # Count dynamic dispatch-site usage with a bare trace run.
    site_counts: Counter = Counter()
    vm = JsVM.from_source(source)
    vm.run(trace=lambda op, site, *rest: site_counts.update([site]))

    total = sum(site_counts.values())
    print(f"{bench!r} on the stack VM: {total:,} bytecodes dispatched via")
    for site in Site:
        share = site_counts.get(int(site), 0) / total
        covered = "SCD-covered" if site is not Site.UNCOVERED else "NOT covered"
        print(f"  {site.name:10} {share:>6.1%}  ({covered})")

    uncovered_share = site_counts.get(int(Site.UNCOVERED), 0) / total

    print("\ntiming on the Cortex-A5 model:")
    rows = []
    for vm_kind in ("js", "lua"):
        base = simulate(bench, vm=vm_kind, scheme="baseline")
        scd = simulate(bench, vm=vm_kind, scheme="scd")
        rows.append((vm_kind, speedup(base, scd), scd.bop_hit_rate,
                     scd.bop_hits + scd.bop_misses, scd.guest_steps))
    for vm_kind, gain, hit_rate, bops, steps in rows:
        print(
            f"  {vm_kind:3}: SCD speedup {gain:.3f}x, bop hit rate {hit_rate:.1%}, "
            f"bop attempts cover {bops / steps:.1%} of dispatches"
        )

    print(
        f"\n{uncovered_share:.1%} of the stack VM's dispatches take slow paths"
        " that SCD cannot annotate (Section III-C), while the register VM's"
        " single dispatcher is fully covered — one reason the paper reports"
        " 19.9% for Lua but 14.1% for JavaScript."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
